//===- service/Service.cpp - Concurrent tree-construction service ---------===//

#include "service/Service.h"

#include "heur/Upgma.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "obs/Log.h"
#include "persist/Checkpoint.h"
#include "seq/EvolutionSim.h"
#include "support/Audit.h"
#include "tree/Newick.h"

#include <algorithm>
#include <cstdio>
#include <exception>

using namespace mutk;

namespace {

/// Key-space salts: whole-matrix and per-block entries share one cache
/// but must never answer for each other.
constexpr std::uint64_t WholeKeySalt = 0x9e3779b97f4a7c15ull;

/// In-memory cache entries -> durable records (shared by early and
/// shutdown compaction).
std::vector<persist::DurableCacheRecord>
toDurableRecords(std::vector<std::pair<std::uint64_t, CachedSolution>> Entries) {
  std::vector<persist::DurableCacheRecord> Records;
  Records.reserve(Entries.size());
  for (auto &[Key, Value] : Entries) {
    persist::DurableCacheRecord Rec;
    Rec.Key = Key;
    Rec.CanonicalBytes = std::move(Value.Bytes);
    Rec.Tree = std::move(Value.Tree);
    Rec.Cost = Value.Cost;
    Rec.Exact = Value.Exact;
    Rec.Space = Value.Block ? persist::CacheNamespace::Block
                            : persist::CacheNamespace::Whole;
    Records.push_back(std::move(Rec));
  }
  return Records;
}

/// Returns \p Tree with leaves relabeled through \p Map (`new = Map[old]`).
PhyloTree relabelLeaves(const PhyloTree &Tree, const std::vector<int> &Map) {
  PhyloTree Out;
  Out.setRoot(Out.adoptSubtree(Tree, Map));
  return Out;
}

/// Whole-matrix cache identity: the canonical matrix bytes extended by
/// the knobs that change the merged tree (mode, polish). Exact-only
/// entries make the remaining knobs (budgets, size caps) irrelevant.
std::vector<std::uint8_t> wholeCacheBytes(const CanonicalForm &Form,
                                          const BuildRequest &Request) {
  std::vector<std::uint8_t> Bytes = Form.Bytes;
  Bytes.push_back(static_cast<std::uint8_t>(Request.Mode));
  Bytes.push_back(Request.Polish ? 1 : 0);
  return Bytes;
}

std::uint64_t wholeCacheKey(const CanonicalForm &Form,
                            const BuildRequest &Request) {
  std::uint64_t Key = Form.Key ^ WholeKeySalt;
  Key ^= static_cast<std::uint64_t>(Request.Mode) * 0x100000001b3ull;
  if (Request.Polish)
    Key ^= 0x2545f4914f6cdd1dull;
  return Key;
}

/// FNV-1a over an encoded request frame; the coalescing flight key
/// (collisions are identity-checked by the coalescer, never trusted).
std::uint64_t coalesceKeyOf(const std::vector<std::uint8_t> &Bytes) {
  std::uint64_t H = 1469598103934665603ull;
  for (std::uint8_t B : Bytes) {
    H ^= B;
    H *= 1099511628211ull;
  }
  return H;
}

/// The scheduling ticket a request earns: wire priority, absolute
/// deadline and fair-share tenant. Default request fields yield the
/// all-equal ticket that keeps the ready queue a plain FIFO.
qos::Ticket ticketFor(const BuildRequest &Request,
                      std::chrono::steady_clock::time_point SubmitTime) {
  qos::Ticket Tk;
  Tk.Priority = static_cast<std::uint8_t>(Request.Priority);
  Tk.Tenant = Request.Tenant;
  if (Request.DeadlineMillis > 0) {
    Tk.HasDeadline = true;
    Tk.Deadline =
        SubmitTime + std::chrono::milliseconds(Request.DeadlineMillis);
  }
  return Tk;
}

} // namespace

TreeService::TreeService(const ServiceOptions &Options)
    : Options(Options), Obs(obs::serviceInstruments()),
      QosObs(obs::qosInstruments()),
      Cost(qos::CostModelOptions{Options.QosProfileMemoCapacity}),
      Admission(Cost, Options.Qos),
      Queue(std::max<std::size_t>(1, Options.QueueCapacity),
            qos::SchedulerOptions{Options.QosStarvationMillis,
                                  &QosObs.StarvationPromotions},
            Obs.Queue),
      Cache(std::max<std::size_t>(1, Options.CacheCapacity),
            Options.CacheShards) {
  Cache.setInstruments(&obs::cacheInstruments(),
                       obs::cacheShardInstruments(
                           std::max(1, Options.CacheShards)));
  if (Options.Incremental)
    Bases = std::make_unique<IncrementalIndex>(Options.IncrementalBases);
  if (!Options.StateDir.empty()) {
    Store = std::make_unique<persist::CacheStore>(Options.StateDir);
    Journal = std::make_unique<persist::JobJournal>(Options.StateDir);
    persist::ensureDir(Options.StateDir + "/ckpt");
    CheckpointHooks.SinkFor =
        [this](std::uint64_t Key) -> std::unique_ptr<CheckpointSink> {
      return std::make_unique<persist::FileCheckpointSink>(
          checkpointPath(Key));
    };
    CheckpointHooks.Load = [this](std::uint64_t Key) {
      return persist::loadCheckpoint(checkpointPath(Key));
    };
    CheckpointHooks.Done = [this](std::uint64_t Key) {
      persist::removeCheckpoint(checkpointPath(Key));
    };
  }
  int NumWorkers = std::max(1, Options.NumWorkers);
  Workers.reserve(static_cast<std::size_t>(NumWorkers));
  for (int I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  obs::log(obs::LogLevel::Debug, "service", "started")
      .kv("workers", NumWorkers)
      .kv("queue_capacity", std::max<std::size_t>(1, Options.QueueCapacity))
      .kv("cache_capacity", Options.CacheCapacity)
      .kv("cache_shards", std::max(1, Options.CacheShards))
      .kv("state_dir",
          Options.StateDir.empty() ? std::string("off") : Options.StateDir);
  // Workers are live before recovery re-enqueues interrupted jobs, so a
  // recovered backlog larger than the queue capacity still drains.
  recoverState();
}

std::string TreeService::checkpointPath(std::uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.ckpt",
                static_cast<unsigned long long>(Key));
  return Options.StateDir + "/ckpt/" + Name;
}

void TreeService::recoverState() {
  if (!Store)
    return;
  persist::CacheStore::LoadResult Loaded;
  {
    MutexLock Lock(PersistMu);
    Loaded = Store->load();
  }
  std::size_t BlockRecords = 0;
  for (persist::DurableCacheRecord &Rec : Loaded.Records) {
    CachedSolution Value;
    Value.Tree = std::move(Rec.Tree);
    Value.Cost = Rec.Cost;
    Value.Exact = Rec.Exact;
    Value.Block = Rec.Space == persist::CacheNamespace::Block;
    Value.Bytes = std::move(Rec.CanonicalBytes);
    if (Value.Block)
      ++BlockRecords;
    Cache.store(Rec.Key, std::move(Value));
  }
  obs::blockCacheInstruments().Recovered.inc(BlockRecords);
  obs::log(obs::LogLevel::Info, "service", "durable cache recovered")
      .kv("snapshot_records", Loaded.SnapshotRecords)
      .kv("wal_records", Loaded.WalRecords)
      .kv("block_records", BlockRecords)
      .kv("dropped", Loaded.DroppedRecords)
      .kv("cold_start", Loaded.ColdStart ? 1 : 0)
      .kv("wal_damaged", Loaded.WalDamaged ? 1 : 0);

  // Re-enqueue jobs that were accepted but never answered. Their
  // requesters are gone, so nobody reads the promises — the value of
  // finishing is the durable cache entry the solve will produce.
  std::vector<persist::PendingJob> Pending;
  {
    MutexLock Lock(PersistMu);
    Pending = Journal->load();
  }
  std::uint64_t MaxId = 0;
  for (persist::PendingJob &P : Pending) {
    MaxId = std::max(MaxId, P.Id);
    std::optional<Request> Req = decodeRequest(P.EncodedRequest);
    if (!Req || Req->V != Verb::Build) {
      MutexLock Lock(PersistMu);
      Journal->completed(P.Id);
      continue;
    }
    Job J;
    J.Request = std::move(Req->Build);
    // The original deadline was relative to a submission in a previous
    // process life; running to completion is the whole point now.
    J.Request.DeadlineMillis = 0;
    J.SubmitTime = Clock::now();
    J.JournalId = P.Id;
    obs::log(obs::LogLevel::Info, "service", "re-enqueued interrupted job")
        .kv("journal_id", P.Id);
    if (!Queue.push(std::move(J))) {
      MutexLock Lock(PersistMu);
      Journal->completed(P.Id);
      continue;
    }
    Counters.Accepted.fetch_add(1, std::memory_order_relaxed);
    Obs.Submitted.inc();
  }
  // Fresh ids must never collide with journaled ones.
  NextJobId.store(MaxId + 1, std::memory_order_relaxed);
}

void TreeService::persistSolution(std::uint64_t Key,
                                  const CachedSolution &Value) {
  if (!Store)
    return;
  persist::DurableCacheRecord Rec;
  Rec.Key = Key;
  Rec.CanonicalBytes = Value.Bytes;
  Rec.Tree = Value.Tree;
  Rec.Cost = Value.Cost;
  Rec.Exact = Value.Exact;
  Rec.Space = Value.Block ? persist::CacheNamespace::Block
                          : persist::CacheNamespace::Whole;
  MutexLock Lock(PersistMu);
  Store->append(Rec, Options.SyncWrites);
  if (Options.WalCompactBytes != 0 &&
      Store->walBytes() > Options.WalCompactBytes)
    Store->compact(toDurableRecords(Cache.entries()));
}

void TreeService::journalCompleted(std::uint64_t JournalId) {
  if (!Journal || JournalId == 0)
    return;
  MutexLock Lock(PersistMu);
  Journal->completed(JournalId);
}

TreeService::~TreeService() { stop(); }

void TreeService::resolveJob(Job &&J, BuildResponse Resp) {
  // Answered = done, whether ok or error: either way the client got a
  // response, so a restart must not re-run it.
  journalCompleted(J.JournalId);
  if (J.CoalesceKey != 0) {
    std::vector<std::promise<BuildResponse>> Followers =
        Coalesce.take(J.CoalesceKey);
    if (!Followers.empty()) {
      QosObs.CoalesceFanout.record(static_cast<double>(Followers.size()));
      for (std::promise<BuildResponse> &P : Followers) {
        BuildResponse Copy = Resp;
        Copy.Coalesced = true;
        P.set_value(std::move(Copy));
      }
    }
  }
  J.Promise.set_value(std::move(Resp));
}

std::future<BuildResponse> TreeService::submitAsync(BuildRequest Request) {
  Job J;
  J.Request = std::move(Request);
  J.SubmitTime = Clock::now();
  std::future<BuildResponse> Future = J.Promise.get_future();

  auto reject = [&](ServiceError Error, std::string Message) {
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    Obs.Rejected.inc();
    BuildResponse Resp;
    Resp.Error = Error;
    Resp.Message = std::move(Message);
    Resp.Tier = J.Tier;
    Resp.PredictedMillis = J.PredictedMillis;
    // resolveJob marks a journaled-then-rejected job answered (without
    // the completion mark a restart would re-run it) and fans the
    // rejection out to any followers already parked on this leader.
    resolveJob(std::move(J), std::move(Resp));
  };

  if (stopping()) {
    reject(ServiceError::ShuttingDown, "service is shutting down");
    return Future;
  }

  if (Options.Qos.Enabled) {
    // Warm requests — whole-matrix identity already cached — skip
    // admission entirely: answering them is O(replay) regardless of how
    // hard the matrix once was, and the advisory `peek` keeps the probe
    // from distorting cache statistics.
    bool Warm = false;
    bool CacheOn = Options.CacheCapacity > 0 && J.Request.UseCache;
    if (J.Request.Generator == GeneratorKind::None && CacheOn &&
        J.Request.Matrix.size() > 1) {
      CanonicalForm Form = canonicalForm(J.Request.Matrix);
      Warm = Cache.peek(wholeCacheKey(Form, J.Request),
                        wholeCacheBytes(Form, J.Request));
    }
    if (!Warm) {
      qos::DifficultyProfile Profile =
          J.Request.Generator == GeneratorKind::None
              ? Cost.profileFor(J.Request.Matrix)
              : qos::CostModel::generatorProfile(J.Request.GenSpecies);
      double RemainingMillis =
          J.Request.DeadlineMillis > 0
              ? static_cast<double>(J.Request.DeadlineMillis)
              : -1.0;
      qos::Verdict V = Admission.assess(J.Request, Profile, RemainingMillis);
      if (!V.Admit) {
        if (V.Error == ServiceError::RateLimited) {
          Counters.RateLimited.fetch_add(1, std::memory_order_relaxed);
          QosObs.RateLimited.inc();
        } else {
          Counters.Shed.fetch_add(1, std::memory_order_relaxed);
          QosObs.Shed.inc();
        }
        // Echo the prediction that justified the rejection: the client
        // can tell a hopeless deadline apart from a drained bucket.
        J.PredictedMillis = V.PredictedMillis;
        reject(V.Error, std::move(V.Message));
        return Future;
      }
      J.Tier = V.Tier;
      J.PredictedMillis = V.PredictedMillis;
      J.PredictedNodes = V.PredictedNodes;
      if (V.Tier == QosTier::Pipeline) {
        // The degraded tier *is* the request with a tighter exact cap;
        // the clamp travels with the job (and with a lent copy).
        J.Request.MaxExactBlockSize =
            std::min(std::max(1, J.Request.MaxExactBlockSize),
                     std::max(1, Options.Qos.DegradedMaxExactBlockSize));
      }
    }
    switch (J.Tier) {
    case QosTier::Exact:
      Counters.TierExact.fetch_add(1, std::memory_order_relaxed);
      QosObs.TierExact.inc();
      break;
    case QosTier::Pipeline:
      Counters.TierPipeline.fetch_add(1, std::memory_order_relaxed);
      QosObs.TierPipeline.inc();
      break;
    case QosTier::Heuristic:
      Counters.TierHeuristic.fetch_add(1, std::memory_order_relaxed);
      QosObs.TierHeuristic.inc();
      break;
    }

    if (Options.QosCoalesce) {
      // Flight identity: the encoded request with scheduling-only
      // fields normalized out (priority and tenant change *when* a job
      // runs, never its answer; the deadline stays — it bounds the
      // node budget and thus the tree).
      BuildRequest Norm = J.Request;
      Norm.Priority = RequestPriority::Normal;
      Norm.Tenant.clear();
      std::vector<std::uint8_t> Identity =
          encodeRequest(makeBuildRequest(Norm));
      std::uint64_t Key = coalesceKeyOf(Identity);
      bool Tracked = true;
      qos::Coalescer::Attach A = Coalesce.attach(Key, Identity, &Tracked);
      if (!A.Leader) {
        // Parked on the leader's flight: no queue slot, no journal
        // entry — the leader's resolve fans the response out.
        Counters.Coalesced.fetch_add(1, std::memory_order_relaxed);
        QosObs.Coalesced.inc();
        Counters.Accepted.fetch_add(1, std::memory_order_relaxed);
        Obs.Submitted.inc();
        return std::move(A.Follower);
      }
      if (Tracked)
        J.CoalesceKey = Key;
    }
  }

  if (Journal) {
    // Journal *before* the queue admits the job: once push returns the
    // worker may already be solving it, and `Completed(id)` must never
    // reach the journal ahead of `Submitted(id)`.
    J.JournalId = NextJobId.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> Encoded =
        encodeRequest(makeBuildRequest(J.Request));
    MutexLock Lock(PersistMu);
    Journal->submitted(J.JournalId, Encoded);
  }

  // Rich tickets only under QoS: with the layer off every ticket is the
  // default all-equal one, which degrades the ready queue to exactly
  // the FIFO the service always had.
  qos::Ticket Tk;
  if (Options.Qos.Enabled)
    Tk = ticketFor(J.Request, J.SubmitTime);
  std::uint64_t JournalId = J.JournalId;
  std::uint64_t CoalesceKey = J.CoalesceKey;
  bool Admitted = Options.BlockOnFullQueue
                      ? Queue.push(std::move(J), std::move(Tk))
                      : Queue.tryPush(std::move(J), std::move(Tk));
  if (!Admitted) {
    // push/tryPush leave the job (and its promise) untouched on failure.
    J.JournalId = JournalId;
    J.CoalesceKey = CoalesceKey;
    reject(Queue.closed() ? ServiceError::ShuttingDown
                          : ServiceError::QueueFull,
           Queue.closed() ? "service is shutting down" : "job queue full");
    return Future;
  }

  Counters.Accepted.fetch_add(1, std::memory_order_relaxed);
  Obs.Submitted.inc();
  return Future;
}

BuildResponse TreeService::submit(BuildRequest Request) {
  return submitAsync(std::move(Request)).get();
}

Response TreeService::handle(const Request &R) {
  Response Out;
  Out.V = R.V;
  switch (R.V) {
  case Verb::Build:
    Out.Build = submit(R.Build);
    Out.Error = Out.Build.Error;
    Out.Message = Out.Build.Message;
    break;
  case Verb::Stats:
    Out.Stats = stats();
    break;
  case Verb::StatsJson:
    Out.StatsJson = statsJson();
    break;
  case Verb::Ping:
  case Verb::Shutdown:
    break;
  }
  return Out;
}

StatsSnapshot TreeService::stats() const {
  StatsSnapshot S = Counters.snapshot();
  S.QueueDepth = Queue.depth();
  S.CacheEntries = Cache.size();
  return S;
}

std::string TreeService::statsJson() const {
  StatsSnapshot S = stats();
  auto u64 = [](std::uint64_t V) { return std::to_string(V); };
  auto f64 = [](double V) {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    return std::string(Buf);
  };
  std::string Out = "{\"service\":{";
  Out += "\"accepted\":" + u64(S.Accepted);
  Out += ",\"completed\":" + u64(S.Completed);
  Out += ",\"failed\":" + u64(S.Failed);
  Out += ",\"rejected\":" + u64(S.Rejected);
  Out += ",\"deadline_expired\":" + u64(S.DeadlineExpired);
  Out += ",\"whole_hits\":" + u64(S.WholeHits);
  Out += ",\"whole_misses\":" + u64(S.WholeMisses);
  Out += ",\"block_hits\":" + u64(S.BlockHits);
  Out += ",\"block_misses\":" + u64(S.BlockMisses);
  Out += ",\"block_remote_hits\":" + u64(S.BlockRemoteHits);
  Out += ",\"incremental_applied\":" + u64(S.IncrementalApplied);
  Out += ",\"incremental_dirty\":" + u64(S.IncrementalDirty);
  Out += ",\"incremental_clean\":" + u64(S.IncrementalClean);
  Out += ",\"shed\":" + u64(S.Shed);
  Out += ",\"rate_limited\":" + u64(S.RateLimited);
  Out += ",\"tier_exact\":" + u64(S.TierExact);
  Out += ",\"tier_pipeline\":" + u64(S.TierPipeline);
  Out += ",\"tier_heuristic\":" + u64(S.TierHeuristic);
  Out += ",\"coalesced\":" + u64(S.Coalesced);
  Out += ",\"queue_depth\":" + u64(S.QueueDepth);
  Out += ",\"cache_entries\":" + u64(S.CacheEntries);
  Out += ",\"p50_ms\":" + f64(S.P50Millis);
  Out += ",\"p95_ms\":" + f64(S.P95Millis);
  Out += "}";
  std::function<std::string()> Cluster;
  {
    MutexLock Lock(ClusterStatsMu);
    Cluster = ClusterStats;
  }
  if (Cluster)
    Out += ",\"cluster\":" + Cluster();
  Out += ",\"registry\":";
  Out += obs::MetricsRegistry::global().renderJson();
  Out += "}";
  return Out;
}

void TreeService::stop() {
  MutexLock Lock(StopMu);
  if (Stopping.exchange(true, std::memory_order_acq_rel)) {
    // Already stopped (or stopping on another thread holding the lock
    // first); workers are joined below only once.
    return;
  }
  Queue.close();
  // Fail everything that never reached a worker; in-flight jobs keep
  // running and resolve their promises normally. resolveJob marks each
  // one answered in the journal and fans the rejection out to any
  // followers coalesced onto it.
  for (Job &J : Queue.drain()) {
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    Obs.Rejected.inc();
    BuildResponse Resp;
    Resp.Error = ServiceError::ShuttingDown;
    Resp.Message = "service stopped before the job started";
    resolveJob(std::move(J), std::move(Resp));
  }
  // Jobs lent to peers can no longer be completed or re-enqueued; their
  // requesters get the same answer as queued jobs.
  std::unordered_map<std::uint64_t, Job> Leftover;
  {
    MutexLock LentLock(LentMu);
    Leftover.swap(Lent);
  }
  for (auto &[Token, J] : Leftover) {
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    Obs.Rejected.inc();
    BuildResponse Resp;
    Resp.Error = ServiceError::ShuttingDown;
    Resp.Message = "service stopped while the job was lent to a peer";
    resolveJob(std::move(J), std::move(Resp));
  }
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  if (Store) {
    // Shutdown compaction folds the WAL into the snapshot so the next
    // start replays one file and an empty log.
    MutexLock PLock(PersistMu);
    Store->compact(toDurableRecords(Cache.entries()));
  }
}

void TreeService::setClusterStats(std::function<std::string()> Fn) {
  MutexLock Lock(ClusterStatsMu);
  ClusterStats = std::move(Fn);
}

std::optional<TreeService::LentJob> TreeService::lendQueuedJob() {
  std::optional<Job> J = Queue.tryPop();
  if (!J)
    return std::nullopt;
  LentJob Out;
  Out.EncodedRequest = encodeRequest(makeBuildRequest(J->Request));
  MutexLock Lock(LentMu);
  Out.Token = NextLentToken++;
  Lent.emplace(Out.Token, std::move(*J));
  return Out;
}

bool TreeService::completeLentJob(std::uint64_t Token,
                                  BuildResponse Response) {
  Job J;
  {
    MutexLock Lock(LentMu);
    auto It = Lent.find(Token);
    if (It == Lent.end())
      return false;
    J = std::move(It->second);
    Lent.erase(It);
  }
  double TotalMillis =
      std::chrono::duration<double, std::milli>(Clock::now() - J.SubmitTime)
          .count();
  if (Response.ok()) {
    Counters.Completed.fetch_add(1, std::memory_order_relaxed);
    Obs.Completed.inc();
    Obs.RequestOkMillis.record(TotalMillis);
  } else {
    Counters.Failed.fetch_add(1, std::memory_order_relaxed);
    Obs.Failed.inc();
    Obs.RequestErrorMillis.record(TotalMillis);
  }
  Counters.Latency.record(TotalMillis);
  // The thief solved the (possibly tier-clamped) request but knows
  // nothing of the QoS metadata; restore the echo before fan-out.
  Response.Tier = J.Tier;
  Response.PredictedMillis = J.PredictedMillis;
  resolveJob(std::move(J), std::move(Response));
  return true;
}

bool TreeService::reenqueueLentJob(std::uint64_t Token) {
  Job J;
  {
    MutexLock Lock(LentMu);
    auto It = Lent.find(Token);
    if (It == Lent.end())
      return false;
    J = std::move(It->second);
    Lent.erase(It);
  }
  std::uint64_t JournalId = J.JournalId;
  std::uint64_t CoalesceKey = J.CoalesceKey;
  qos::Ticket Tk;
  if (Options.Qos.Enabled)
    Tk = ticketFor(J.Request, J.SubmitTime);
  if (!Queue.tryPush(std::move(J), std::move(Tk))) {
    // The requester still gets an answer — and a *truthful* one: a full
    // queue is transient overload (retry with backoff), a closed queue
    // is shutdown (resubmit elsewhere). Conflating the two used to send
    // ShuttingDown for both, steering clients away from a live node.
    J.JournalId = JournalId;
    J.CoalesceKey = CoalesceKey;
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    Obs.Rejected.inc();
    bool Closing = Queue.closed();
    BuildResponse Resp;
    Resp.Error =
        Closing ? ServiceError::ShuttingDown : ServiceError::QueueFull;
    Resp.Message = Closing
                       ? "lent job returned during shutdown and could "
                         "not be re-enqueued"
                       : "lent job returned to a full queue (overload)";
    resolveJob(std::move(J), std::move(Resp));
    return false;
  }
  return true;
}

std::size_t TreeService::lentJobCount() const {
  MutexLock Lock(LentMu);
  return Lent.size();
}

std::optional<CachedSolution>
TreeService::cacheLookup(std::uint64_t Key,
                         const std::vector<std::uint8_t> &Bytes) {
  if (Options.CacheCapacity == 0)
    return std::nullopt;
  return Cache.lookup(Key, Bytes);
}

void TreeService::cacheStore(std::uint64_t Key, CachedSolution Value) {
  if (Options.CacheCapacity == 0)
    return;
  persistSolution(Key, Value);
  Cache.store(Key, std::move(Value));
}

void TreeService::workerLoop() {
  while (std::optional<Job> J = Queue.pop()) {
    Obs.QueueWaitMillis.record(std::chrono::duration<double, std::milli>(
                                   Clock::now() - J->SubmitTime)
                                   .count());
    Obs.InFlight.add(1);
    InFlightJobs.fetch_add(1, std::memory_order_relaxed);
    BuildResponse Resp;
    try {
      Resp = process(*J);
    } catch (const std::exception &E) {
      Resp.Error = ServiceError::Internal;
      Resp.Message = E.what();
      obs::log(obs::LogLevel::Warn, "service", "job failed with exception")
          .kv("error", E.what());
    } catch (...) {
      Resp.Error = ServiceError::Internal;
      Resp.Message = "unknown failure";
      obs::log(obs::LogLevel::Warn, "service",
               "job failed with unknown exception");
    }
    // The tier/prediction echo must survive the exception paths too.
    Resp.Tier = J->Tier;
    Resp.PredictedMillis = J->PredictedMillis;
    Obs.InFlight.sub(1);
    InFlightJobs.fetch_sub(1, std::memory_order_relaxed);
    if (Options.Qos.Enabled) {
      // Calibration: only genuinely-searched solves carry a meaningful
      // (nodes, millis) pair — cache replays and the heuristic tier
      // branch nothing.
      if (Resp.ok() && !Resp.CacheHit && J->Tier != QosTier::Heuristic &&
          Resp.Branched > 0)
        Cost.observe(Resp.Branched, Resp.SolveMillis);
      if (J->PredictedMillis > 0.0) {
        QosObs.PredictedMillis.record(J->PredictedMillis);
        QosObs.ActualMillis.record(Resp.SolveMillis);
      }
    }
    double TotalMillis = std::chrono::duration<double, std::milli>(
                             Clock::now() - J->SubmitTime)
                             .count();
    if (Resp.ok()) {
      Counters.Completed.fetch_add(1, std::memory_order_relaxed);
      Obs.Completed.inc();
      Obs.RequestOkMillis.record(TotalMillis);
    } else {
      Counters.Failed.fetch_add(1, std::memory_order_relaxed);
      Obs.Failed.inc();
      Obs.RequestErrorMillis.record(TotalMillis);
      obs::log(obs::LogLevel::Debug, "service", "job answered with error")
          .kv("error", serviceErrorName(Resp.Error))
          .kv("total_ms", TotalMillis);
    }
    Counters.Latency.record(TotalMillis);
    resolveJob(std::move(*J), std::move(Resp));
  }
}

BuildResponse TreeService::process(const Job &J) {
  const BuildRequest &Request = J.Request;
  Clock::time_point SubmitTime = J.SubmitTime;
  BuildResponse Resp;
  Resp.Tier = J.Tier;
  Resp.PredictedMillis = J.PredictedMillis;
  Clock::time_point Start = Clock::now();
  Resp.QueueMillis =
      std::chrono::duration<double, std::milli>(Start - SubmitTime).count();

  auto fail = [&](ServiceError Error, std::string Message) {
    Resp.Error = Error;
    Resp.Message = std::move(Message);
    return Resp;
  };

  // Deadline accounting: expired jobs are answered, never solved.
  bool HasDeadline = Request.DeadlineMillis > 0;
  Clock::time_point Deadline =
      SubmitTime + std::chrono::milliseconds(Request.DeadlineMillis);
  if (HasDeadline && Start >= Deadline) {
    Counters.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    Obs.DeadlineExpired.inc();
    return fail(ServiceError::DeadlineExpired,
                "deadline elapsed while the job was queued");
  }

  // Materialize the matrix.
  DistanceMatrix M;
  switch (Request.Generator) {
  case GeneratorKind::None:
    M = Request.Matrix;
    break;
  case GeneratorKind::Uniform:
  case GeneratorKind::Clustered:
  case GeneratorKind::Ultrametric:
  case GeneratorKind::Dna: {
    if (Request.GenSpecies < 2 || Request.GenSpecies > Options.MaxSpecies)
      return fail(ServiceError::BadRequest,
                  "generator species count out of range");
    int N = Request.GenSpecies;
    std::uint64_t Seed = Request.GenSeed;
    if (Request.Generator == GeneratorKind::Uniform)
      M = uniformRandomMetric(N, Seed, 1.0, 100.0);
    else if (Request.Generator == GeneratorKind::Clustered)
      M = scaledToMax(plantedClusterMetric(N, Seed), 100.0);
    else if (Request.Generator == GeneratorKind::Ultrametric)
      M = randomUltrametricMatrix(N, Seed);
    else
      M = hmdnaLikeMatrix(N, Seed);
    break;
  }
  }
  if (M.size() == 0)
    return fail(ServiceError::BadMatrix, "empty matrix");
  if (M.size() > Options.MaxSpecies)
    return fail(ServiceError::TooLarge,
                "matrix exceeds the service species cap");

  if (M.size() == 1) {
    PipelineResult Trivial = buildCompactSetTree(M);
    Resp.Newick = toNewick(Trivial.Tree);
    Resp.Cost = Trivial.Cost;
    Resp.Exact = true;
    Resp.SolveMillis = std::chrono::duration<double, std::milli>(
                           Clock::now() - Start)
                           .count();
    return Resp;
  }

  // Whole-matrix cache probe: local tier, then (when clustered) the
  // owning peer's shard.
  bool CacheOn = Options.CacheCapacity > 0 && Request.UseCache;
  CanonicalForm Form;
  if (CacheOn) {
    Form = canonicalForm(M);
    std::vector<std::uint8_t> Identity = wholeCacheBytes(Form, Request);
    std::uint64_t Key = wholeCacheKey(Form, Request);
    auto replay = [&](const CachedSolution &Hit) {
      Counters.WholeHits.fetch_add(1, std::memory_order_relaxed);
      Obs.WholeHits.inc();
      PhyloTree Tree = relabelLeaves(Hit.Tree, Form.Perm);
      Tree.setNames(M.names());
      // A replayed tree must be exactly as good as a fresh solve: same
      // leaf set, ultrametric, and (exact entries are stored only for
      // the feasibility-guaranteeing Maximum mode knobs that are part
      // of the key) dominating the request matrix. Remote entries get
      // the same scrutiny — a peer's cache is no more trusted than ours.
      MUTK_AUDIT(Tree.numLeaves() == M.size(),
                 "cache replay must cover every requested species");
      MUTK_AUDIT(Tree.hasMonotoneHeights(),
                 "cache replay must stay ultrametric after relabeling");
      MUTK_AUDIT(M.size() > MaxAuditedSpecies ||
                     Request.Mode != CondenseMode::Maximum ||
                     !Hit.Exact || Tree.dominatesMatrix(M),
                 "cache replay must dominate the request matrix");
      Resp.Newick = toNewick(Tree);
      Resp.Cost = Hit.Cost;
      Resp.Exact = Hit.Exact;
      Resp.CacheHit = true;
      Resp.SolveMillis = std::chrono::duration<double, std::milli>(
                             Clock::now() - Start)
                             .count();
      return Resp;
    };
    if (std::optional<CachedSolution> Hit = Cache.lookup(Key, Identity))
      return replay(*Hit);
    Counters.WholeMisses.fetch_add(1, std::memory_order_relaxed);
    Obs.WholeMisses.inc();
    if (DistCache *Cluster = Remote.load(std::memory_order_acquire)) {
      if (std::optional<CachedSolution> Hit =
              Cluster->lookup(Key, Identity, CacheTier::Whole)) {
        // Adopt the shard's entry locally so the next probe stays here.
        Cache.store(Key, *Hit);
        return replay(*Hit);
      }
    }
  }

  // Heuristic tier: admission decided only an agglomerative pass fits
  // the deadline. One UPGMM run (complete linkage — feasible for M by
  // construction), no B&B, nothing cached (the tree is not exact) and
  // nothing fed back to calibration (it branches no nodes).
  if (J.Tier == QosTier::Heuristic) {
    PhyloTree Tree = buildLinkageTree(M, Linkage::Maximum);
    if (HasDeadline && Clock::now() > Deadline) {
      Counters.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
      Obs.DeadlineExpired.inc();
      return fail(ServiceError::DeadlineExpired,
                  "deadline elapsed during the heuristic solve");
    }
    Resp.Newick = toNewick(Tree);
    Resp.Cost = Tree.weight();
    Resp.Exact = false;
    Resp.SolveMillis =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
    return Resp;
  }

  // Incremental re-solve: a whole-matrix miss that is a small
  // perturbation of a remembered base still replays every clean block
  // from the block tier — the diff only *reports* the reuse, the
  // fingerprint-keyed cache *delivers* it (clean blocks condense to
  // byte-identical matrices). A failed match changes nothing: the
  // request proceeds as a from-scratch solve.
  std::optional<IncrementalIndex::Match> BaseMatch;
  if (Request.Incremental && CacheOn && Bases) {
    obs::IncrementalInstruments &Inc = obs::incrementalInstruments();
    Inc.Requests.inc();
    BaseMatch = Bases->bestBase(M, Options.IncrementalMaxTaxaDelta,
                                Options.IncrementalMaxChangedEntries);
    if (BaseMatch) {
      Inc.Applied.inc();
      Inc.TaxaAdded.inc(static_cast<std::uint64_t>(BaseMatch->Delta.TaxaAdded));
      Inc.TaxaRemoved.inc(
          static_cast<std::uint64_t>(BaseMatch->Delta.TaxaRemoved));
      Inc.EntriesChanged.inc(
          static_cast<std::uint64_t>(BaseMatch->Delta.EntriesChanged));
    } else if (Bases->size() == 0) {
      Inc.NoBase.inc();
    } else {
      Inc.DeltaTooLarge.inc();
    }
  }

  PhyloTree SolvedTree;
  Resp = solveFresh(M, Request, Deadline, HasDeadline, SolvedTree);
  Resp.QueueMillis =
      std::chrono::duration<double, std::milli>(Start - SubmitTime).count();
  Resp.Tier = J.Tier;
  Resp.PredictedMillis = J.PredictedMillis;

  if (Resp.ok() && BaseMatch) {
    Resp.IncrementalApplied = true;
    Resp.TaxaAdded = BaseMatch->Delta.TaxaAdded;
    Resp.TaxaRemoved = BaseMatch->Delta.TaxaRemoved;
    Resp.EntriesChanged = BaseMatch->Delta.EntriesChanged;
    Counters.IncrementalApplied.fetch_add(1, std::memory_order_relaxed);
    Counters.IncrementalDirty.fetch_add(Resp.DirtyBlocks,
                                        std::memory_order_relaxed);
    Counters.IncrementalClean.fetch_add(Resp.CleanBlocks,
                                        std::memory_order_relaxed);
    obs::IncrementalInstruments &Inc = obs::incrementalInstruments();
    Inc.DirtyBlocks.inc(Resp.DirtyBlocks);
    Inc.CleanBlocks.inc(Resp.CleanBlocks);
  }

  if (Resp.ok() && Resp.Exact && CacheOn && Bases)
    Bases->remember(M, Form.Key);

  if (Resp.ok() && Resp.Exact && CacheOn) {
    // Store in canonical labels so any relabeling of M replays it.
    std::vector<int> Inverse(Form.Perm.size());
    for (std::size_t K = 0; K < Form.Perm.size(); ++K)
      Inverse[static_cast<std::size_t>(Form.Perm[K])] = static_cast<int>(K);
    CachedSolution Entry;
    Entry.Cost = Resp.Cost;
    Entry.Exact = Resp.Exact;
    Entry.Bytes = wholeCacheBytes(Form, Request);
    Entry.Tree = relabelLeaves(SolvedTree, Inverse);
    persistSolution(wholeCacheKey(Form, Request), Entry);
    if (DistCache *Cluster = Remote.load(std::memory_order_acquire))
      Cluster->insert(wholeCacheKey(Form, Request), Entry, CacheTier::Whole);
    Cache.store(wholeCacheKey(Form, Request), std::move(Entry));
  }
  return Resp;
}

BuildResponse TreeService::solveFresh(const DistanceMatrix &M,
                                      const BuildRequest &Request,
                                      Clock::time_point Deadline,
                                      bool HasDeadline, PhyloTree &OutTree) {
  BuildResponse Resp;
  Clock::time_point Start = Clock::now();

  PipelineOptions Pipeline;
  Pipeline.Mode = Request.Mode;
  Pipeline.MaxExactBlockSize = std::max(1, Request.MaxExactBlockSize);
  Pipeline.PolishTopology = Request.Polish;
  Pipeline.Solver = Options.Solver;
  // Auto block concurrency shares the machine among the request
  // workers: each request gets ~hardware/NumWorkers pool threads so a
  // fully-loaded service does not oversubscribe.
  if (Options.BlockConcurrency == 0) {
    const int Hardware =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    Pipeline.BlockConcurrency =
        std::max(1, Hardware / std::max(1, Options.NumWorkers));
  } else {
    Pipeline.BlockConcurrency = Options.BlockConcurrency;
  }
  Pipeline.ThreadsPerBlock = Options.ThreadsPerBlock;
  Pipeline.Bnb.ThreeThree = Request.ThreeThree;

  // Deadline -> node budget: bound every block's branch-and-bound so an
  // over-deadline job is truncated instead of pinning a worker.
  std::uint64_t Budget = Request.NodeBudget;
  if (HasDeadline) {
    double RemainingMillis = std::chrono::duration<double, std::milli>(
                                 Deadline - Start)
                                 .count();
    std::uint64_t DeadlineBudget = static_cast<std::uint64_t>(
        std::max(1.0, RemainingMillis) *
        static_cast<double>(Options.NodesPerMilli));
    Budget = Budget == 0 ? DeadlineBudget : std::min(Budget, DeadlineBudget);
  }
  Pipeline.Bnb.MaxBranchedNodes = Budget;

  // Per-block memoization hooks around the shared cache: local tier
  // first, then (when clustered and the block is worth the round-trip)
  // the owning peer's shard.
  std::uint32_t LocalBlockHits = 0;
  BlockCacheHooks Hooks;
  bool CacheOn = Options.CacheCapacity > 0 && Request.UseCache;
  if (CacheOn) {
    Hooks.Lookup = [&](std::uint64_t Key,
                       const std::vector<std::uint8_t> &Bytes)
        -> std::optional<BlockCacheEntry> {
      obs::BlockCacheInstruments &BC = obs::blockCacheInstruments();
      std::optional<CachedSolution> Hit = Cache.lookup(Key, Bytes);
      if (!Hit) {
        if (DistCache *Cluster = Remote.load(std::memory_order_acquire)) {
          if (canonicalSpeciesCount(Bytes) >= Options.RemoteBlockMinSize) {
            BC.RemoteLookups.inc();
            Hit = Cluster->lookup(Key, Bytes, CacheTier::Block);
            if (Hit) {
              BC.RemoteHits.inc();
              Counters.BlockRemoteHits.fetch_add(1,
                                                 std::memory_order_relaxed);
              // Adopt the peer's subtree so the next probe stays local.
              Cache.store(Key, *Hit);
            }
          }
        }
      }
      if (!Hit) {
        Counters.BlockMisses.fetch_add(1, std::memory_order_relaxed);
        BC.Misses.inc();
        return std::nullopt;
      }
      Counters.BlockHits.fetch_add(1, std::memory_order_relaxed);
      BC.Hits.inc();
      ++LocalBlockHits;
      BlockCacheEntry Entry;
      Entry.Tree = std::move(Hit->Tree);
      Entry.Cost = Hit->Cost;
      Entry.Exact = Hit->Exact;
      return Entry;
    };
    Hooks.Store = [&](std::uint64_t Key,
                      const std::vector<std::uint8_t> &Bytes,
                      const BlockCacheEntry &Entry) {
      if (!Entry.Exact)
        return; // only proven-optimal blocks are budget/knob-independent
      obs::BlockCacheInstruments &BC = obs::blockCacheInstruments();
      CachedSolution Value;
      Value.Tree = Entry.Tree;
      Value.Cost = Entry.Cost;
      Value.Exact = Entry.Exact;
      Value.Block = true;
      Value.Bytes = Bytes;
      persistSolution(Key, Value);
      if (DistCache *Cluster = Remote.load(std::memory_order_acquire)) {
        if (canonicalSpeciesCount(Bytes) >= Options.RemoteBlockMinSize) {
          BC.RemoteInserts.inc();
          Cluster->insert(Key, Value, CacheTier::Block);
        }
      }
      BC.Inserts.inc();
      Cache.store(Key, std::move(Value));
    };
    Pipeline.BlockCache = &Hooks;
  }
  if (Store) {
    // Long block solves leave resumable state under <StateDir>/ckpt/;
    // a re-enqueued job after a crash picks each block up where the
    // previous process stopped.
    Pipeline.BlockCheckpoint = &CheckpointHooks;
    Pipeline.Bnb.CheckpointEveryNodes = Options.CheckpointEveryNodes;
    Pipeline.Bnb.CheckpointEverySeconds = Options.CheckpointEverySeconds;
  }

  PipelineResult Result = buildCompactSetTree(M, Pipeline);

  if (HasDeadline && Clock::now() > Deadline) {
    Counters.DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    Obs.DeadlineExpired.inc();
    Resp.Error = ServiceError::DeadlineExpired;
    Resp.Message = "deadline elapsed during the solve";
    return Resp;
  }

  Resp.Newick = toNewick(Result.Tree);
  Resp.Cost = Result.Cost;
  Resp.Branched = Result.TotalStats.Branched;
  Resp.BlockCacheHits = LocalBlockHits;
  Resp.Exact = !Result.Blocks.empty();
  Resp.Blocks.reserve(Result.Blocks.size());
  for (const BlockReport &Report : Result.Blocks) {
    Resp.Exact = Resp.Exact && Report.Exact;
    BlockSummary S;
    S.NumBlocks = Report.NumBlocks;
    S.Cost = Report.Cost;
    S.Exact = Report.Exact;
    S.FromCache = Report.FromCache;
    if (Report.FromCache)
      ++Resp.CleanBlocks;
    else
      ++Resp.DirtyBlocks;
    Resp.Blocks.push_back(S);
  }
  OutTree = std::move(Result.Tree);
  Resp.SolveMillis =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  return Resp;
}
