//===- service/IncrementalIndex.cpp - Remembered solve bases --------------===//

#include "service/IncrementalIndex.h"

#include <algorithm>

using namespace mutk;

IncrementalIndex::IncrementalIndex(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(1, Capacity)) {}

void IncrementalIndex::remember(const DistanceMatrix &M,
                                std::uint64_t FingerprintKey) {
  if (M.size() < 2)
    return;
  MutexLock Lock(Mu);
  for (auto It = Bases.begin(); It != Bases.end(); ++It) {
    if (It->Key == FingerprintKey) {
      // Same canonical matrix: refresh recency, adopt the (possibly
      // renamed) incarnation — names are the diff join key.
      It->M = M;
      Bases.splice(Bases.begin(), Bases, It);
      return;
    }
  }
  Bases.push_front(Entry{FingerprintKey, M});
  if (Bases.size() > Capacity)
    Bases.pop_back();
}

std::optional<IncrementalIndex::Match>
IncrementalIndex::bestBase(const DistanceMatrix &M, int MaxTaxaDelta,
                           int MaxChangedEntries) const {
  std::optional<Match> Best;
  MutexLock Lock(Mu);
  for (const Entry &E : Bases) {
    MatrixDelta Delta = diffMatrices(E.M, M);
    if (!Delta.Comparable)
      continue;
    if (Delta.TaxaAdded + Delta.TaxaRemoved > MaxTaxaDelta)
      continue;
    if (Delta.EntriesChanged > MaxChangedEntries)
      continue;
    if (!Best ||
        Delta.DirtySpecies.size() < Best->Delta.DirtySpecies.size())
      Best = Match{std::move(Delta)};
  }
  return Best;
}

std::size_t IncrementalIndex::size() const {
  MutexLock Lock(Mu);
  return Bases.size();
}
