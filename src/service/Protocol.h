//===- service/Protocol.h - mutkd wire protocol -----------------*- C++ -*-===//
///
/// \file
/// The framed request/response protocol of the tree-construction service
/// (`mutkd`). Every message travels as one *frame*: a little-endian
/// `u32` payload length followed by that many bytes; the first payload
/// byte is the verb. Encoding reuses the byte codecs of `mp/Serialize.h`,
/// so scalars are fixed-width little-endian and strings are
/// length-prefixed.
///
/// Verbs:
///   * `Build`    — construct a tree for an inline matrix or a
///                  server-side generated workload; answers with a
///                  `BuildResponse` (Newick, cost, block reports,
///                  timings) or a structured error.
///   * `Stats`    — answers with a `StatsSnapshot` counter block.
///   * `Ping`     — liveness probe; answers with an empty `Ok`.
///   * `Shutdown` — acknowledges, then the server stops accepting.
///   * `StatsJson`— answers with one JSON string: the full metrics
///                  registry (queue, cache, request-latency and B&B
///                  counters) merged with the per-instance snapshot.
///
/// See `docs/service.md` for the byte-level layout and error-code
/// semantics. Decoders never trust lengths: any truncated or oversized
/// field fails the decode, which the server answers with `BadFrame`.
///
//===----------------------------------------------------------------------===//

#ifndef MUTK_SERVICE_PROTOCOL_H
#define MUTK_SERVICE_PROTOCOL_H

#include "bnb/BnbOptions.h"
#include "matrix/Condense.h"
#include "matrix/DistanceMatrix.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mutk {

/// Protocol revision; bumped on any incompatible layout change.
/// Version 2 added the incremental re-solve fields (request `Incremental`
/// flag; response perturbation-delta block; stats remote-block and
/// incremental counters). Version 3 added the QoS fields: request
/// priority/tenant, response tier/predicted-cost/coalesced, the `Shed`
/// and `RateLimited` error codes, and the stats QoS counter block.
inline constexpr std::uint32_t ServiceProtocolVersion = 3;

/// Upper bound on a frame payload; larger frames are rejected before
/// allocation so a hostile length prefix cannot OOM the server.
inline constexpr std::uint32_t MaxFrameBytes = 64u << 20;

/// Hard protocol cap on inline-matrix size: checked before the decoder
/// allocates the n^2 buffer, so a hostile size field cannot OOM the
/// server either. Servers may impose a lower per-instance cap
/// (`ServiceOptions::MaxSpecies`).
inline constexpr std::int32_t MaxProtocolSpecies = 4096;

/// Request/response kinds (first payload byte).
enum class Verb : std::uint8_t {
  Build = 1,
  Stats = 2,
  Ping = 3,
  Shutdown = 4,
  StatsJson = 5,
};

/// Structured error codes carried by responses.
enum class ServiceError : std::uint8_t {
  None = 0,        ///< Success.
  BadFrame = 1,    ///< Frame or payload failed to decode.
  BadRequest = 2,  ///< Decoded but semantically invalid (unknown
                   ///< generator, nonpositive species count, ...).
  BadMatrix = 3,   ///< Inline matrix payload malformed.
  TooLarge = 4,    ///< Matrix exceeds the server's species cap.
  DeadlineExpired = 5, ///< The request's deadline elapsed before a
                       ///< result was ready.
  QueueFull = 6,       ///< The job queue is full (overload — transient;
                       ///< retry with backoff).
  ShuttingDown = 7,    ///< Service is stopping; job was not solved.
  Internal = 8,        ///< Unexpected server-side failure.
  Shed = 9,            ///< QoS admission: predicted cost exceeds the
                       ///< remaining deadline on every tier.
  RateLimited = 10,    ///< QoS admission: tenant token bucket drained.
};

/// The largest valid `ServiceError` value (decoder bounds check).
inline constexpr std::uint8_t MaxServiceError =
    static_cast<std::uint8_t>(ServiceError::RateLimited);

/// Stable lower-case name for an error code (used by logs and JSON).
const char *serviceErrorName(ServiceError Error);

/// Actionable, human-readable advice for an error code — what the
/// *client* should do about it (retry, back off, resubmit elsewhere).
/// Distinct per code so overload (`QueueFull`) and shutdown
/// (`ShuttingDown`) are never conflated in client output; empty for
/// codes with nothing actionable to say.
const char *serviceErrorAdvice(ServiceError Error);

/// Client-requested scheduling priority (higher runs sooner).
enum class RequestPriority : std::uint8_t {
  Low = 0,
  Normal = 1,
  High = 2,
};

/// Execution tier the QoS layer routed a request to, echoed in the
/// response. Always `Exact` when QoS is disabled.
enum class QosTier : std::uint8_t {
  Exact = 0,     ///< Full-fidelity pipeline, request unmodified.
  Pipeline = 1,  ///< Degraded pipeline: exact-block cap clamped.
  Heuristic = 2, ///< Single agglomerative (UPGMM) pass, no B&B.
};

/// Stable lower-case name for a tier (logs, JSON, client output).
const char *qosTierName(QosTier Tier);

/// Server-side workload generators (mirrors `mutk_tool --generate`).
enum class GeneratorKind : std::uint8_t {
  None = 0, ///< Request carries an inline matrix instead.
  Uniform = 1,
  Clustered = 2,
  Ultrametric = 3,
  Dna = 4,
};

/// One tree-construction job.
struct BuildRequest {
  /// `None` means `Matrix` is the payload; otherwise the server
  /// synthesizes the matrix from the spec below.
  GeneratorKind Generator = GeneratorKind::None;
  DistanceMatrix Matrix;
  std::int32_t GenSpecies = 0;
  std::uint64_t GenSeed = 1;

  // `PipelineOptions`-equivalent knobs. 3-3 third-species pruning is on
  // by default (cost-preserving on the clustered per-block matrices the
  // pipeline solves; clients opt out with `--three-three none`).
  CondenseMode Mode = CondenseMode::Maximum;
  ThreeThreeMode ThreeThree = ThreeThreeMode::ThirdSpecies;
  std::int32_t MaxExactBlockSize = 16;
  bool Polish = false;

  /// Per-block branch-and-bound node budget (0 = unlimited).
  std::uint64_t NodeBudget = 0;
  /// Deadline in milliseconds measured from submission (0 = none). Also
  /// capped into a per-block node budget via
  /// `ServiceOptions::NodesPerMilli`.
  std::uint32_t DeadlineMillis = 0;
  /// Opt out of the result cache for this request.
  bool UseCache = true;
  /// Ask the service to treat this matrix as a possible perturbation of
  /// a recently solved base: diff against remembered bases, and when the
  /// delta is small, re-run the decomposition reusing every clean
  /// block's cached subtree (docs/caching.md#incremental-mode). Requires
  /// `UseCache`; ignored when the service has no incremental index.
  bool Incremental = false;

  /// \name QoS fields (protocol v3; see docs/qos.md).
  /// @{

  /// Scheduling priority relative to other queued jobs.
  RequestPriority Priority = RequestPriority::Normal;
  /// Fair-share / rate-limit bucket; empty is the default tenant.
  std::string Tenant;

  /// @}
};

/// Per-condensed-block accounting echoed to the client.
struct BlockSummary {
  std::int32_t NumBlocks = 0;
  double Cost = 0.0;
  bool Exact = true;
  bool FromCache = false;
};

/// Answer to a `Build` request.
struct BuildResponse {
  ServiceError Error = ServiceError::None;
  /// Human-readable error detail (empty on success).
  std::string Message;

  std::string Newick;
  double Cost = 0.0;
  /// Every block solved to proven optimality.
  bool Exact = false;
  /// Whole-matrix cache hit: no solver ran at all.
  bool CacheHit = false;
  /// Condensed blocks replayed from the block cache.
  std::uint32_t BlockCacheHits = 0;
  std::uint64_t Branched = 0;
  std::vector<BlockSummary> Blocks;

  /// Incremental mode engaged: a remembered base matched within the
  /// service's delta thresholds, so clean blocks replayed from cache.
  bool IncrementalApplied = false;
  /// Blocks that actually ran a solver (incremental or not: on a
  /// from-scratch solve this is simply blocks minus cache hits).
  std::uint32_t DirtyBlocks = 0;
  /// Blocks replayed verbatim from the block cache.
  std::uint32_t CleanBlocks = 0;
  /// Perturbation delta against the matched base (zeros unless
  /// `IncrementalApplied`).
  std::int32_t TaxaAdded = 0;
  std::int32_t TaxaRemoved = 0;
  std::int32_t EntriesChanged = 0;

  /// Time spent queued before a worker picked the job up.
  double QueueMillis = 0.0;
  /// Time the worker spent resolving the job (cache replay or solve).
  double SolveMillis = 0.0;

  /// \name QoS fields (protocol v3; see docs/qos.md).
  /// @{

  /// Execution tier the request was routed to (`Exact` when QoS is off).
  QosTier Tier = QosTier::Exact;
  /// Admission-time cost prediction in milliseconds (0 when QoS is off).
  double PredictedMillis = 0.0;
  /// This response was fanned out from an identical in-flight leader
  /// request rather than solved (or rejected) on its own.
  bool Coalesced = false;

  /// @}

  bool ok() const { return Error == ServiceError::None; }
};

/// Counter block answered to `Stats`.
struct StatsSnapshot {
  std::uint64_t Accepted = 0;  ///< Jobs admitted to the queue.
  std::uint64_t Completed = 0; ///< Jobs answered successfully.
  std::uint64_t Failed = 0;    ///< Jobs answered with an error.
  std::uint64_t WholeHits = 0;
  std::uint64_t WholeMisses = 0;
  std::uint64_t BlockHits = 0;
  std::uint64_t BlockMisses = 0;
  /// Block subtrees served by a remote peer's cache shard.
  std::uint64_t BlockRemoteHits = 0;
  /// Requests where incremental mode engaged (base matched thresholds).
  std::uint64_t IncrementalApplied = 0;
  /// Blocks re-solved / replayed across all incremental requests.
  std::uint64_t IncrementalDirty = 0;
  std::uint64_t IncrementalClean = 0;
  std::uint64_t DeadlineExpired = 0;
  std::uint64_t Rejected = 0; ///< QueueFull + ShuttingDown rejections.
  /// \name QoS counters (protocol v3; zero when QoS is off).
  /// @{
  std::uint64_t Shed = 0;        ///< Admission sheds (hopeless deadline).
  std::uint64_t RateLimited = 0; ///< Tenant token-bucket rejections.
  std::uint64_t TierExact = 0;
  std::uint64_t TierPipeline = 0;
  std::uint64_t TierHeuristic = 0;
  std::uint64_t Coalesced = 0; ///< Followers answered by a leader's solve.
  /// @}
  std::uint64_t QueueDepth = 0;
  std::uint64_t CacheEntries = 0;
  double P50Millis = 0.0; ///< Median end-to-end latency.
  double P95Millis = 0.0;
};

/// A decoded request frame.
struct Request {
  Verb V = Verb::Ping;
  BuildRequest Build; ///< Valid when `V == Verb::Build`.
};

/// A decoded response frame. `Build`/`Stats` are valid per the verb; the
/// outer error covers protocol-level failures (e.g. `BadFrame`).
struct Response {
  Verb V = Verb::Ping;
  ServiceError Error = ServiceError::None;
  std::string Message;
  BuildResponse Build;
  StatsSnapshot Stats;
  /// Valid when `V == Verb::StatsJson`: one JSON object (see
  /// `docs/observability.md` for the schema).
  std::string StatsJson;

  bool ok() const { return Error == ServiceError::None; }
};

/// \name Payload codecs (the `u32` frame length is the transport's job).
/// @{
std::vector<std::uint8_t> encodeRequest(const Request &R);
std::optional<Request> decodeRequest(const std::vector<std::uint8_t> &Bytes,
                                     std::string *Error = nullptr);

std::vector<std::uint8_t> encodeResponse(const Response &R);
std::optional<Response> decodeResponse(const std::vector<std::uint8_t> &Bytes,
                                       std::string *Error = nullptr);
/// @}

/// Convenience constructors.
Request makeBuildRequest(BuildRequest Build);
Response makeErrorResponse(Verb V, ServiceError Error, std::string Message);

} // namespace mutk

#endif // MUTK_SERVICE_PROTOCOL_H
