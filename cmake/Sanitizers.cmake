# Sanitizer and invariant-audit toggles shared by every preset.
#
# MUTK_SANITIZE is a semicolon-separated list of sanitizers to compile
# and link the whole tree with. Supported combinations:
#
#   -DMUTK_SANITIZE=address;undefined   (the `asan` preset)
#   -DMUTK_SANITIZE=thread              (the `tsan` preset)
#
# ThreadSanitizer is incompatible with AddressSanitizer/LeakSanitizer,
# so mixing them is rejected at configure time instead of failing with
# an obscure compiler error later.
#
# MUTK_AUDIT controls the MUTK_AUDIT(...) runtime invariant checks
# (support/Audit.h): AUTO enables them for Debug and any sanitized
# build, ON/OFF force them. Release builds with AUTO compile the audits
# out entirely.

set(MUTK_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address, undefined, leak, thread")
set(MUTK_AUDIT "AUTO" CACHE STRING
    "Runtime invariant audits: AUTO (Debug/sanitized only), ON, OFF")
set_property(CACHE MUTK_AUDIT PROPERTY STRINGS AUTO ON OFF)

if(MUTK_SANITIZE)
  set(_mutk_known_sanitizers address undefined leak thread)
  foreach(_san IN LISTS MUTK_SANITIZE)
    if(NOT _san IN_LIST _mutk_known_sanitizers)
      message(FATAL_ERROR "MUTK_SANITIZE: unknown sanitizer '${_san}' "
                          "(supported: ${_mutk_known_sanitizers})")
    endif()
  endforeach()
  if("thread" IN_LIST MUTK_SANITIZE AND
     ("address" IN_LIST MUTK_SANITIZE OR "leak" IN_LIST MUTK_SANITIZE))
    message(FATAL_ERROR "MUTK_SANITIZE: thread cannot be combined with "
                        "address/leak (TSan owns the shadow memory)")
  endif()

  string(REPLACE ";" "," _mutk_sanitize_flag "${MUTK_SANITIZE}")
  add_compile_options(-fsanitize=${_mutk_sanitize_flag}
                      -fno-sanitize-recover=all
                      -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_mutk_sanitize_flag})
  message(STATUS "mutk: sanitizers enabled: ${MUTK_SANITIZE}")
endif()

if(MUTK_AUDIT STREQUAL "ON")
  set(_mutk_audit_on TRUE)
elseif(MUTK_AUDIT STREQUAL "OFF")
  set(_mutk_audit_on FALSE)
else() # AUTO: audits ride along with any debugging/sanitizing build
  if(MUTK_SANITIZE OR CMAKE_BUILD_TYPE STREQUAL "Debug")
    set(_mutk_audit_on TRUE)
  else()
    set(_mutk_audit_on FALSE)
  endif()
endif()

if(_mutk_audit_on)
  add_compile_definitions(MUTK_ENABLE_AUDIT=1)
  message(STATUS "mutk: runtime invariant audits enabled")
endif()
