file(REMOVE_RECURSE
  "CMakeFiles/heur_test.dir/heur_test.cpp.o"
  "CMakeFiles/heur_test.dir/heur_test.cpp.o.d"
  "heur_test"
  "heur_test.pdb"
  "heur_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heur_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
