file(REMOVE_RECURSE
  "CMakeFiles/compact_pipeline_test.dir/compact_pipeline_test.cpp.o"
  "CMakeFiles/compact_pipeline_test.dir/compact_pipeline_test.cpp.o.d"
  "compact_pipeline_test"
  "compact_pipeline_test.pdb"
  "compact_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
