
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/core_test.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mutk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/mutk_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mutk_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mutk_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mutk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bnb/CMakeFiles/mutk_bnb.dir/DependInfo.cmake"
  "/root/repo/build/src/heur/CMakeFiles/mutk_heur.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/mutk_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mutk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mutk_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/redist/CMakeFiles/mutk_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/mutk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/mutk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
