file(REMOVE_RECURSE
  "CMakeFiles/nni_test.dir/nni_test.cpp.o"
  "CMakeFiles/nni_test.dir/nni_test.cpp.o.d"
  "nni_test"
  "nni_test.pdb"
  "nni_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nni_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
