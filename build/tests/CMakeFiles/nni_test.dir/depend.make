# Empty dependencies file for nni_test.
# This may be replaced when dependencies are built.
