file(REMOVE_RECURSE
  "CMakeFiles/metric_theory_test.dir/metric_theory_test.cpp.o"
  "CMakeFiles/metric_theory_test.dir/metric_theory_test.cpp.o.d"
  "metric_theory_test"
  "metric_theory_test.pdb"
  "metric_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
