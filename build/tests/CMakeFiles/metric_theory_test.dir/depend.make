# Empty dependencies file for metric_theory_test.
# This may be replaced when dependencies are built.
