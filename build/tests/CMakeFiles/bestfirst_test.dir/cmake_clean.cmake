file(REMOVE_RECURSE
  "CMakeFiles/bestfirst_test.dir/bestfirst_test.cpp.o"
  "CMakeFiles/bestfirst_test.dir/bestfirst_test.cpp.o.d"
  "bestfirst_test"
  "bestfirst_test.pdb"
  "bestfirst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestfirst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
