# Empty compiler generated dependencies file for bestfirst_test.
# This may be replaced when dependencies are built.
