file(REMOVE_RECURSE
  "CMakeFiles/mutk_tool.dir/mutk_tool.cpp.o"
  "CMakeFiles/mutk_tool.dir/mutk_tool.cpp.o.d"
  "mutk_tool"
  "mutk_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
