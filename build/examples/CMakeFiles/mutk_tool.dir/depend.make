# Empty dependencies file for mutk_tool.
# This may be replaced when dependencies are built.
