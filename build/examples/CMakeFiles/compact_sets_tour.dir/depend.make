# Empty dependencies file for compact_sets_tour.
# This may be replaced when dependencies are built.
