file(REMOVE_RECURSE
  "CMakeFiles/compact_sets_tour.dir/compact_sets_tour.cpp.o"
  "CMakeFiles/compact_sets_tour.dir/compact_sets_tour.cpp.o.d"
  "compact_sets_tour"
  "compact_sets_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_sets_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
