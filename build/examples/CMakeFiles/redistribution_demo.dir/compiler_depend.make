# Empty compiler generated dependencies file for redistribution_demo.
# This may be replaced when dependencies are built.
