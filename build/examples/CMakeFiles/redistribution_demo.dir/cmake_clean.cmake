file(REMOVE_RECURSE
  "CMakeFiles/redistribution_demo.dir/redistribution_demo.cpp.o"
  "CMakeFiles/redistribution_demo.dir/redistribution_demo.cpp.o.d"
  "redistribution_demo"
  "redistribution_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribution_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
