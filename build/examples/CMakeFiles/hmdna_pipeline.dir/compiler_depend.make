# Empty compiler generated dependencies file for hmdna_pipeline.
# This may be replaced when dependencies are built.
