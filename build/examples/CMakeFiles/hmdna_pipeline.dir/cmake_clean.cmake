file(REMOVE_RECURSE
  "CMakeFiles/hmdna_pipeline.dir/hmdna_pipeline.cpp.o"
  "CMakeFiles/hmdna_pipeline.dir/hmdna_pipeline.cpp.o.d"
  "hmdna_pipeline"
  "hmdna_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdna_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
