file(REMOVE_RECURSE
  "CMakeFiles/mutk_core.dir/TreeBuilder.cpp.o"
  "CMakeFiles/mutk_core.dir/TreeBuilder.cpp.o.d"
  "libmutk_core.a"
  "libmutk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
