# Empty dependencies file for mutk_core.
# This may be replaced when dependencies are built.
