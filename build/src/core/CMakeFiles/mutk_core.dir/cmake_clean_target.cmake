file(REMOVE_RECURSE
  "libmutk_core.a"
)
