file(REMOVE_RECURSE
  "CMakeFiles/mutk_analysis.dir/DotExport.cpp.o"
  "CMakeFiles/mutk_analysis.dir/DotExport.cpp.o.d"
  "CMakeFiles/mutk_analysis.dir/Profile.cpp.o"
  "CMakeFiles/mutk_analysis.dir/Profile.cpp.o.d"
  "libmutk_analysis.a"
  "libmutk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
