# Empty compiler generated dependencies file for mutk_analysis.
# This may be replaced when dependencies are built.
