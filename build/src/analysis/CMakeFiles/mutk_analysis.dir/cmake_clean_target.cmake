file(REMOVE_RECURSE
  "libmutk_analysis.a"
)
