
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/CompactSets.cpp" "src/graph/CMakeFiles/mutk_graph.dir/CompactSets.cpp.o" "gcc" "src/graph/CMakeFiles/mutk_graph.dir/CompactSets.cpp.o.d"
  "/root/repo/src/graph/Hierarchy.cpp" "src/graph/CMakeFiles/mutk_graph.dir/Hierarchy.cpp.o" "gcc" "src/graph/CMakeFiles/mutk_graph.dir/Hierarchy.cpp.o.d"
  "/root/repo/src/graph/Mst.cpp" "src/graph/CMakeFiles/mutk_graph.dir/Mst.cpp.o" "gcc" "src/graph/CMakeFiles/mutk_graph.dir/Mst.cpp.o.d"
  "/root/repo/src/graph/Subdominant.cpp" "src/graph/CMakeFiles/mutk_graph.dir/Subdominant.cpp.o" "gcc" "src/graph/CMakeFiles/mutk_graph.dir/Subdominant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/mutk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
