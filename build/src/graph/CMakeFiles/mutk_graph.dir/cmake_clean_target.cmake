file(REMOVE_RECURSE
  "libmutk_graph.a"
)
