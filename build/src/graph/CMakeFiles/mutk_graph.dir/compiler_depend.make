# Empty compiler generated dependencies file for mutk_graph.
# This may be replaced when dependencies are built.
