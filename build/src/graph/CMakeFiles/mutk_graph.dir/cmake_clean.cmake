file(REMOVE_RECURSE
  "CMakeFiles/mutk_graph.dir/CompactSets.cpp.o"
  "CMakeFiles/mutk_graph.dir/CompactSets.cpp.o.d"
  "CMakeFiles/mutk_graph.dir/Hierarchy.cpp.o"
  "CMakeFiles/mutk_graph.dir/Hierarchy.cpp.o.d"
  "CMakeFiles/mutk_graph.dir/Mst.cpp.o"
  "CMakeFiles/mutk_graph.dir/Mst.cpp.o.d"
  "CMakeFiles/mutk_graph.dir/Subdominant.cpp.o"
  "CMakeFiles/mutk_graph.dir/Subdominant.cpp.o.d"
  "libmutk_graph.a"
  "libmutk_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
