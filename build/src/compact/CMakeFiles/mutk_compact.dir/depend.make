# Empty dependencies file for mutk_compact.
# This may be replaced when dependencies are built.
