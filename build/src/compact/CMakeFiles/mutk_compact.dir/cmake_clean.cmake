file(REMOVE_RECURSE
  "CMakeFiles/mutk_compact.dir/CompactSetPipeline.cpp.o"
  "CMakeFiles/mutk_compact.dir/CompactSetPipeline.cpp.o.d"
  "libmutk_compact.a"
  "libmutk_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
