file(REMOVE_RECURSE
  "libmutk_compact.a"
)
