file(REMOVE_RECURSE
  "libmutk_mp.a"
)
