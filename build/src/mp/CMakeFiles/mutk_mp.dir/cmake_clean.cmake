file(REMOVE_RECURSE
  "CMakeFiles/mutk_mp.dir/Communicator.cpp.o"
  "CMakeFiles/mutk_mp.dir/Communicator.cpp.o.d"
  "CMakeFiles/mutk_mp.dir/MpBnb.cpp.o"
  "CMakeFiles/mutk_mp.dir/MpBnb.cpp.o.d"
  "CMakeFiles/mutk_mp.dir/Serialize.cpp.o"
  "CMakeFiles/mutk_mp.dir/Serialize.cpp.o.d"
  "libmutk_mp.a"
  "libmutk_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
