# Empty dependencies file for mutk_mp.
# This may be replaced when dependencies are built.
