file(REMOVE_RECURSE
  "libmutk_parallel.a"
)
