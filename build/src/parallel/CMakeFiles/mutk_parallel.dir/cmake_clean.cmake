file(REMOVE_RECURSE
  "CMakeFiles/mutk_parallel.dir/ThreadedBnb.cpp.o"
  "CMakeFiles/mutk_parallel.dir/ThreadedBnb.cpp.o.d"
  "libmutk_parallel.a"
  "libmutk_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
