# Empty dependencies file for mutk_parallel.
# This may be replaced when dependencies are built.
