# Empty compiler generated dependencies file for mutk_tree.
# This may be replaced when dependencies are built.
