
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/AsciiTree.cpp" "src/tree/CMakeFiles/mutk_tree.dir/AsciiTree.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/AsciiTree.cpp.o.d"
  "/root/repo/src/tree/Consensus.cpp" "src/tree/CMakeFiles/mutk_tree.dir/Consensus.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/Consensus.cpp.o.d"
  "/root/repo/src/tree/Newick.cpp" "src/tree/CMakeFiles/mutk_tree.dir/Newick.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/Newick.cpp.o.d"
  "/root/repo/src/tree/PhyloTree.cpp" "src/tree/CMakeFiles/mutk_tree.dir/PhyloTree.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/PhyloTree.cpp.o.d"
  "/root/repo/src/tree/RobinsonFoulds.cpp" "src/tree/CMakeFiles/mutk_tree.dir/RobinsonFoulds.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/RobinsonFoulds.cpp.o.d"
  "/root/repo/src/tree/UltrametricFit.cpp" "src/tree/CMakeFiles/mutk_tree.dir/UltrametricFit.cpp.o" "gcc" "src/tree/CMakeFiles/mutk_tree.dir/UltrametricFit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/mutk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
