file(REMOVE_RECURSE
  "CMakeFiles/mutk_tree.dir/AsciiTree.cpp.o"
  "CMakeFiles/mutk_tree.dir/AsciiTree.cpp.o.d"
  "CMakeFiles/mutk_tree.dir/Consensus.cpp.o"
  "CMakeFiles/mutk_tree.dir/Consensus.cpp.o.d"
  "CMakeFiles/mutk_tree.dir/Newick.cpp.o"
  "CMakeFiles/mutk_tree.dir/Newick.cpp.o.d"
  "CMakeFiles/mutk_tree.dir/PhyloTree.cpp.o"
  "CMakeFiles/mutk_tree.dir/PhyloTree.cpp.o.d"
  "CMakeFiles/mutk_tree.dir/RobinsonFoulds.cpp.o"
  "CMakeFiles/mutk_tree.dir/RobinsonFoulds.cpp.o.d"
  "CMakeFiles/mutk_tree.dir/UltrametricFit.cpp.o"
  "CMakeFiles/mutk_tree.dir/UltrametricFit.cpp.o.d"
  "libmutk_tree.a"
  "libmutk_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
