file(REMOVE_RECURSE
  "libmutk_tree.a"
)
