
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/Alignment.cpp" "src/seq/CMakeFiles/mutk_seq.dir/Alignment.cpp.o" "gcc" "src/seq/CMakeFiles/mutk_seq.dir/Alignment.cpp.o.d"
  "/root/repo/src/seq/EditDistance.cpp" "src/seq/CMakeFiles/mutk_seq.dir/EditDistance.cpp.o" "gcc" "src/seq/CMakeFiles/mutk_seq.dir/EditDistance.cpp.o.d"
  "/root/repo/src/seq/EvolutionSim.cpp" "src/seq/CMakeFiles/mutk_seq.dir/EvolutionSim.cpp.o" "gcc" "src/seq/CMakeFiles/mutk_seq.dir/EvolutionSim.cpp.o.d"
  "/root/repo/src/seq/Fasta.cpp" "src/seq/CMakeFiles/mutk_seq.dir/Fasta.cpp.o" "gcc" "src/seq/CMakeFiles/mutk_seq.dir/Fasta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/mutk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/mutk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
