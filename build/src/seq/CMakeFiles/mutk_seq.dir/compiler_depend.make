# Empty compiler generated dependencies file for mutk_seq.
# This may be replaced when dependencies are built.
