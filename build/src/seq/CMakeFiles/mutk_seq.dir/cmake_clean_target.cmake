file(REMOVE_RECURSE
  "libmutk_seq.a"
)
