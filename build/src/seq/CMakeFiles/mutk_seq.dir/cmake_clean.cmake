file(REMOVE_RECURSE
  "CMakeFiles/mutk_seq.dir/Alignment.cpp.o"
  "CMakeFiles/mutk_seq.dir/Alignment.cpp.o.d"
  "CMakeFiles/mutk_seq.dir/EditDistance.cpp.o"
  "CMakeFiles/mutk_seq.dir/EditDistance.cpp.o.d"
  "CMakeFiles/mutk_seq.dir/EvolutionSim.cpp.o"
  "CMakeFiles/mutk_seq.dir/EvolutionSim.cpp.o.d"
  "CMakeFiles/mutk_seq.dir/Fasta.cpp.o"
  "CMakeFiles/mutk_seq.dir/Fasta.cpp.o.d"
  "libmutk_seq.a"
  "libmutk_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
