# Empty dependencies file for mutk_seq.
# This may be replaced when dependencies are built.
