# Empty dependencies file for mutk_bnb.
# This may be replaced when dependencies are built.
