file(REMOVE_RECURSE
  "CMakeFiles/mutk_bnb.dir/BestFirstBnb.cpp.o"
  "CMakeFiles/mutk_bnb.dir/BestFirstBnb.cpp.o.d"
  "CMakeFiles/mutk_bnb.dir/Engine.cpp.o"
  "CMakeFiles/mutk_bnb.dir/Engine.cpp.o.d"
  "CMakeFiles/mutk_bnb.dir/SequentialBnb.cpp.o"
  "CMakeFiles/mutk_bnb.dir/SequentialBnb.cpp.o.d"
  "CMakeFiles/mutk_bnb.dir/ThreeThree.cpp.o"
  "CMakeFiles/mutk_bnb.dir/ThreeThree.cpp.o.d"
  "CMakeFiles/mutk_bnb.dir/Topology.cpp.o"
  "CMakeFiles/mutk_bnb.dir/Topology.cpp.o.d"
  "libmutk_bnb.a"
  "libmutk_bnb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_bnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
