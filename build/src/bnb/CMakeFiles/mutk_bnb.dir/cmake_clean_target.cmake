file(REMOVE_RECURSE
  "libmutk_bnb.a"
)
