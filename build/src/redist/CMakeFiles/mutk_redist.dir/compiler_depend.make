# Empty compiler generated dependencies file for mutk_redist.
# This may be replaced when dependencies are built.
