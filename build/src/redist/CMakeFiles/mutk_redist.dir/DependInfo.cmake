
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redist/Baselines.cpp" "src/redist/CMakeFiles/mutk_redist.dir/Baselines.cpp.o" "gcc" "src/redist/CMakeFiles/mutk_redist.dir/Baselines.cpp.o.d"
  "/root/repo/src/redist/GenBlock.cpp" "src/redist/CMakeFiles/mutk_redist.dir/GenBlock.cpp.o" "gcc" "src/redist/CMakeFiles/mutk_redist.dir/GenBlock.cpp.o.d"
  "/root/repo/src/redist/Schedule.cpp" "src/redist/CMakeFiles/mutk_redist.dir/Schedule.cpp.o" "gcc" "src/redist/CMakeFiles/mutk_redist.dir/Schedule.cpp.o.d"
  "/root/repo/src/redist/Scpa.cpp" "src/redist/CMakeFiles/mutk_redist.dir/Scpa.cpp.o" "gcc" "src/redist/CMakeFiles/mutk_redist.dir/Scpa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
