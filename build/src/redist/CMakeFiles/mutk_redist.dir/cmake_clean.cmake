file(REMOVE_RECURSE
  "CMakeFiles/mutk_redist.dir/Baselines.cpp.o"
  "CMakeFiles/mutk_redist.dir/Baselines.cpp.o.d"
  "CMakeFiles/mutk_redist.dir/GenBlock.cpp.o"
  "CMakeFiles/mutk_redist.dir/GenBlock.cpp.o.d"
  "CMakeFiles/mutk_redist.dir/Schedule.cpp.o"
  "CMakeFiles/mutk_redist.dir/Schedule.cpp.o.d"
  "CMakeFiles/mutk_redist.dir/Scpa.cpp.o"
  "CMakeFiles/mutk_redist.dir/Scpa.cpp.o.d"
  "libmutk_redist.a"
  "libmutk_redist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_redist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
