file(REMOVE_RECURSE
  "libmutk_redist.a"
)
