file(REMOVE_RECURSE
  "libmutk_sim.a"
)
