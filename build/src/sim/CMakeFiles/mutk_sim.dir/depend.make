# Empty dependencies file for mutk_sim.
# This may be replaced when dependencies are built.
