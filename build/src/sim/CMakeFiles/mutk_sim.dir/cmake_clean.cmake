file(REMOVE_RECURSE
  "CMakeFiles/mutk_sim.dir/ClusterSim.cpp.o"
  "CMakeFiles/mutk_sim.dir/ClusterSim.cpp.o.d"
  "libmutk_sim.a"
  "libmutk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
