file(REMOVE_RECURSE
  "CMakeFiles/mutk_support.dir/Rng.cpp.o"
  "CMakeFiles/mutk_support.dir/Rng.cpp.o.d"
  "CMakeFiles/mutk_support.dir/UnionFind.cpp.o"
  "CMakeFiles/mutk_support.dir/UnionFind.cpp.o.d"
  "libmutk_support.a"
  "libmutk_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
