file(REMOVE_RECURSE
  "libmutk_support.a"
)
