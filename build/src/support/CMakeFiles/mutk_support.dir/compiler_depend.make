# Empty compiler generated dependencies file for mutk_support.
# This may be replaced when dependencies are built.
