# Empty dependencies file for mutk_heur.
# This may be replaced when dependencies are built.
