file(REMOVE_RECURSE
  "libmutk_heur.a"
)
