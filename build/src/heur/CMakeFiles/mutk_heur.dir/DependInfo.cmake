
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heur/NeighborJoining.cpp" "src/heur/CMakeFiles/mutk_heur.dir/NeighborJoining.cpp.o" "gcc" "src/heur/CMakeFiles/mutk_heur.dir/NeighborJoining.cpp.o.d"
  "/root/repo/src/heur/NniSearch.cpp" "src/heur/CMakeFiles/mutk_heur.dir/NniSearch.cpp.o" "gcc" "src/heur/CMakeFiles/mutk_heur.dir/NniSearch.cpp.o.d"
  "/root/repo/src/heur/Upgma.cpp" "src/heur/CMakeFiles/mutk_heur.dir/Upgma.cpp.o" "gcc" "src/heur/CMakeFiles/mutk_heur.dir/Upgma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/mutk_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/mutk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
