file(REMOVE_RECURSE
  "CMakeFiles/mutk_heur.dir/NeighborJoining.cpp.o"
  "CMakeFiles/mutk_heur.dir/NeighborJoining.cpp.o.d"
  "CMakeFiles/mutk_heur.dir/NniSearch.cpp.o"
  "CMakeFiles/mutk_heur.dir/NniSearch.cpp.o.d"
  "CMakeFiles/mutk_heur.dir/Upgma.cpp.o"
  "CMakeFiles/mutk_heur.dir/Upgma.cpp.o.d"
  "libmutk_heur.a"
  "libmutk_heur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_heur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
