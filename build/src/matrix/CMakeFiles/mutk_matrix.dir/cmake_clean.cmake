file(REMOVE_RECURSE
  "CMakeFiles/mutk_matrix.dir/Condense.cpp.o"
  "CMakeFiles/mutk_matrix.dir/Condense.cpp.o.d"
  "CMakeFiles/mutk_matrix.dir/DistanceMatrix.cpp.o"
  "CMakeFiles/mutk_matrix.dir/DistanceMatrix.cpp.o.d"
  "CMakeFiles/mutk_matrix.dir/Generators.cpp.o"
  "CMakeFiles/mutk_matrix.dir/Generators.cpp.o.d"
  "CMakeFiles/mutk_matrix.dir/MatrixIO.cpp.o"
  "CMakeFiles/mutk_matrix.dir/MatrixIO.cpp.o.d"
  "CMakeFiles/mutk_matrix.dir/MetricUtils.cpp.o"
  "CMakeFiles/mutk_matrix.dir/MetricUtils.cpp.o.d"
  "libmutk_matrix.a"
  "libmutk_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutk_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
