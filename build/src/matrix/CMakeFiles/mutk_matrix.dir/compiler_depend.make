# Empty compiler generated dependencies file for mutk_matrix.
# This may be replaced when dependencies are built.
