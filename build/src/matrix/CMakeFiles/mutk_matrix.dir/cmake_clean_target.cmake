file(REMOVE_RECURSE
  "libmutk_matrix.a"
)
