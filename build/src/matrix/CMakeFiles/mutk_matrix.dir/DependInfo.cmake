
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/Condense.cpp" "src/matrix/CMakeFiles/mutk_matrix.dir/Condense.cpp.o" "gcc" "src/matrix/CMakeFiles/mutk_matrix.dir/Condense.cpp.o.d"
  "/root/repo/src/matrix/DistanceMatrix.cpp" "src/matrix/CMakeFiles/mutk_matrix.dir/DistanceMatrix.cpp.o" "gcc" "src/matrix/CMakeFiles/mutk_matrix.dir/DistanceMatrix.cpp.o.d"
  "/root/repo/src/matrix/Generators.cpp" "src/matrix/CMakeFiles/mutk_matrix.dir/Generators.cpp.o" "gcc" "src/matrix/CMakeFiles/mutk_matrix.dir/Generators.cpp.o.d"
  "/root/repo/src/matrix/MatrixIO.cpp" "src/matrix/CMakeFiles/mutk_matrix.dir/MatrixIO.cpp.o" "gcc" "src/matrix/CMakeFiles/mutk_matrix.dir/MatrixIO.cpp.o.d"
  "/root/repo/src/matrix/MetricUtils.cpp" "src/matrix/CMakeFiles/mutk_matrix.dir/MetricUtils.cpp.o" "gcc" "src/matrix/CMakeFiles/mutk_matrix.dir/MetricUtils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mutk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
