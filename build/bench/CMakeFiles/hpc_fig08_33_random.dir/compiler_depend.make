# Empty compiler generated dependencies file for hpc_fig08_33_random.
# This may be replaced when dependencies are built.
