# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hpc_fig08_33_random.
