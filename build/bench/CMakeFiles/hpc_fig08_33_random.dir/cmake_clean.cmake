file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig08_33_random.dir/hpc_fig08_33_random.cpp.o"
  "CMakeFiles/hpc_fig08_33_random.dir/hpc_fig08_33_random.cpp.o.d"
  "hpc_fig08_33_random"
  "hpc_fig08_33_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig08_33_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
