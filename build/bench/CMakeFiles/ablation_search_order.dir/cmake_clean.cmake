file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_order.dir/ablation_search_order.cpp.o"
  "CMakeFiles/ablation_search_order.dir/ablation_search_order.cpp.o.d"
  "ablation_search_order"
  "ablation_search_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
