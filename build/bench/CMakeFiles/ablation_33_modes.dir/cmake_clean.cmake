file(REMOVE_RECURSE
  "CMakeFiles/ablation_33_modes.dir/ablation_33_modes.cpp.o"
  "CMakeFiles/ablation_33_modes.dir/ablation_33_modes.cpp.o.d"
  "ablation_33_modes"
  "ablation_33_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_33_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
