# Empty dependencies file for pact_fig13_time_hmdna30.
# This may be replaced when dependencies are built.
