file(REMOVE_RECURSE
  "CMakeFiles/pact_fig13_time_hmdna30.dir/pact_fig13_time_hmdna30.cpp.o"
  "CMakeFiles/pact_fig13_time_hmdna30.dir/pact_fig13_time_hmdna30.cpp.o.d"
  "pact_fig13_time_hmdna30"
  "pact_fig13_time_hmdna30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pact_fig13_time_hmdna30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
