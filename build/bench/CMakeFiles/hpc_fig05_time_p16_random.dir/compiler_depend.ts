# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hpc_fig05_time_p16_random.
