# Empty compiler generated dependencies file for hpc_fig05_time_p16_random.
# This may be replaced when dependencies are built.
