file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig05_time_p16_random.dir/hpc_fig05_time_p16_random.cpp.o"
  "CMakeFiles/hpc_fig05_time_p16_random.dir/hpc_fig05_time_p16_random.cpp.o.d"
  "hpc_fig05_time_p16_random"
  "hpc_fig05_time_p16_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig05_time_p16_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
