# Empty compiler generated dependencies file for hpc_fig04_33_hmdna.
# This may be replaced when dependencies are built.
