file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig04_33_hmdna.dir/hpc_fig04_33_hmdna.cpp.o"
  "CMakeFiles/hpc_fig04_33_hmdna.dir/hpc_fig04_33_hmdna.cpp.o.d"
  "hpc_fig04_33_hmdna"
  "hpc_fig04_33_hmdna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig04_33_hmdna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
