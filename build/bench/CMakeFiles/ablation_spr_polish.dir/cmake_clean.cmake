file(REMOVE_RECURSE
  "CMakeFiles/ablation_spr_polish.dir/ablation_spr_polish.cpp.o"
  "CMakeFiles/ablation_spr_polish.dir/ablation_spr_polish.cpp.o.d"
  "ablation_spr_polish"
  "ablation_spr_polish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spr_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
