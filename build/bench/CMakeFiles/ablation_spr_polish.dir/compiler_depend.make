# Empty compiler generated dependencies file for ablation_spr_polish.
# This may be replaced when dependencies are built.
