file(REMOVE_RECURSE
  "CMakeFiles/ext_message_traffic.dir/ext_message_traffic.cpp.o"
  "CMakeFiles/ext_message_traffic.dir/ext_message_traffic.cpp.o.d"
  "ext_message_traffic"
  "ext_message_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_message_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
