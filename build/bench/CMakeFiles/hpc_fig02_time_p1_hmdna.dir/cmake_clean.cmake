file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig02_time_p1_hmdna.dir/hpc_fig02_time_p1_hmdna.cpp.o"
  "CMakeFiles/hpc_fig02_time_p1_hmdna.dir/hpc_fig02_time_p1_hmdna.cpp.o.d"
  "hpc_fig02_time_p1_hmdna"
  "hpc_fig02_time_p1_hmdna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig02_time_p1_hmdna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
