# Empty compiler generated dependencies file for hpc_fig02_time_p1_hmdna.
# This may be replaced when dependencies are built.
