# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hpc_fig02_time_p1_hmdna.
