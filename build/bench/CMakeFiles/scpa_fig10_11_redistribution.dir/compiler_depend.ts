# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scpa_fig10_11_redistribution.
