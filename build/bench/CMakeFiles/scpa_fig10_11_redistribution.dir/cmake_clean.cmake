file(REMOVE_RECURSE
  "CMakeFiles/scpa_fig10_11_redistribution.dir/scpa_fig10_11_redistribution.cpp.o"
  "CMakeFiles/scpa_fig10_11_redistribution.dir/scpa_fig10_11_redistribution.cpp.o.d"
  "scpa_fig10_11_redistribution"
  "scpa_fig10_11_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scpa_fig10_11_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
