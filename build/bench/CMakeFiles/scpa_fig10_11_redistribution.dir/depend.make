# Empty dependencies file for scpa_fig10_11_redistribution.
# This may be replaced when dependencies are built.
