# Empty compiler generated dependencies file for hpc_fig06_speedup_random.
# This may be replaced when dependencies are built.
