file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig06_speedup_random.dir/hpc_fig06_speedup_random.cpp.o"
  "CMakeFiles/hpc_fig06_speedup_random.dir/hpc_fig06_speedup_random.cpp.o.d"
  "hpc_fig06_speedup_random"
  "hpc_fig06_speedup_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig06_speedup_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
