# Empty dependencies file for pact_fig10_cost_hmdna26.
# This may be replaced when dependencies are built.
