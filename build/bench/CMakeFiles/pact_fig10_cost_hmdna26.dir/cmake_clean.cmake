file(REMOVE_RECURSE
  "CMakeFiles/pact_fig10_cost_hmdna26.dir/pact_fig10_cost_hmdna26.cpp.o"
  "CMakeFiles/pact_fig10_cost_hmdna26.dir/pact_fig10_cost_hmdna26.cpp.o.d"
  "pact_fig10_cost_hmdna26"
  "pact_fig10_cost_hmdna26.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pact_fig10_cost_hmdna26.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
