# Empty compiler generated dependencies file for hpc_fig03_speedup_hmdna.
# This may be replaced when dependencies are built.
