# Empty compiler generated dependencies file for hpc_fig07_time_p1_random.
# This may be replaced when dependencies are built.
