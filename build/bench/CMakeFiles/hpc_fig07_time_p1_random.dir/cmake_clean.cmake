file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig07_time_p1_random.dir/hpc_fig07_time_p1_random.cpp.o"
  "CMakeFiles/hpc_fig07_time_p1_random.dir/hpc_fig07_time_p1_random.cpp.o.d"
  "hpc_fig07_time_p1_random"
  "hpc_fig07_time_p1_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig07_time_p1_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
