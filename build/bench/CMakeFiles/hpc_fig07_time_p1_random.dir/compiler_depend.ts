# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hpc_fig07_time_p1_random.
