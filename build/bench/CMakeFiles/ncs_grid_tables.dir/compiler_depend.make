# Empty compiler generated dependencies file for ncs_grid_tables.
# This may be replaced when dependencies are built.
