file(REMOVE_RECURSE
  "CMakeFiles/ncs_grid_tables.dir/ncs_grid_tables.cpp.o"
  "CMakeFiles/ncs_grid_tables.dir/ncs_grid_tables.cpp.o.d"
  "ncs_grid_tables"
  "ncs_grid_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncs_grid_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
