# Empty compiler generated dependencies file for pact_fig12_cost_hmdna30.
# This may be replaced when dependencies are built.
