file(REMOVE_RECURSE
  "CMakeFiles/pact_fig11_time_hmdna26.dir/pact_fig11_time_hmdna26.cpp.o"
  "CMakeFiles/pact_fig11_time_hmdna26.dir/pact_fig11_time_hmdna26.cpp.o.d"
  "pact_fig11_time_hmdna26"
  "pact_fig11_time_hmdna26.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pact_fig11_time_hmdna26.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
