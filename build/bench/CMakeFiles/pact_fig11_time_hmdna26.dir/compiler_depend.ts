# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pact_fig11_time_hmdna26.
