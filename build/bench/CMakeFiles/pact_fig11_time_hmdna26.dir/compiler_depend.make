# Empty compiler generated dependencies file for pact_fig11_time_hmdna26.
# This may be replaced when dependencies are built.
