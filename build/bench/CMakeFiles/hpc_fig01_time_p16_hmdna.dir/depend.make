# Empty dependencies file for hpc_fig01_time_p16_hmdna.
# This may be replaced when dependencies are built.
