file(REMOVE_RECURSE
  "CMakeFiles/hpc_fig01_time_p16_hmdna.dir/hpc_fig01_time_p16_hmdna.cpp.o"
  "CMakeFiles/hpc_fig01_time_p16_hmdna.dir/hpc_fig01_time_p16_hmdna.cpp.o.d"
  "hpc_fig01_time_p16_hmdna"
  "hpc_fig01_time_p16_hmdna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fig01_time_p16_hmdna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
