file(REMOVE_RECURSE
  "CMakeFiles/pact_fig08_time_random.dir/pact_fig08_time_random.cpp.o"
  "CMakeFiles/pact_fig08_time_random.dir/pact_fig08_time_random.cpp.o.d"
  "pact_fig08_time_random"
  "pact_fig08_time_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pact_fig08_time_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
