# Empty dependencies file for pact_fig08_time_random.
# This may be replaced when dependencies are built.
