# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pact_fig09_cost_random.
