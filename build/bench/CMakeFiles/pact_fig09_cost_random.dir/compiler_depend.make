# Empty compiler generated dependencies file for pact_fig09_cost_random.
# This may be replaced when dependencies are built.
