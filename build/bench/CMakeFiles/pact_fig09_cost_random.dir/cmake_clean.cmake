file(REMOVE_RECURSE
  "CMakeFiles/pact_fig09_cost_random.dir/pact_fig09_cost_random.cpp.o"
  "CMakeFiles/pact_fig09_cost_random.dir/pact_fig09_cost_random.cpp.o.d"
  "pact_fig09_cost_random"
  "pact_fig09_cost_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pact_fig09_cost_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
