# Empty compiler generated dependencies file for ablation_condense_modes.
# This may be replaced when dependencies are built.
