file(REMOVE_RECURSE
  "CMakeFiles/ablation_condense_modes.dir/ablation_condense_modes.cpp.o"
  "CMakeFiles/ablation_condense_modes.dir/ablation_condense_modes.cpp.o.d"
  "ablation_condense_modes"
  "ablation_condense_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_condense_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
