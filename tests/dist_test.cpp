//===- tests/dist_test.cpp - Multi-node cluster subsystem -------*- C++ -*-===//
//
// Covers src/dist bottom-up: the framed wire with its typed errors, the
// peer registry + consistent-hash ring, the socket MpEndpoints, the
// distributed B&B session (cost identity against the sequential
// solver), and full in-process clusters — cache sharding, job stealing,
// and the death sweep that re-enqueues jobs lent to a crashed peer. The
// final drill forks real peer processes and SIGKILLs them mid-steal.
//
//===----------------------------------------------------------------------===//

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "dist/Cluster.h"
#include "dist/DistBnb.h"
#include "dist/MpSocket.h"
#include "dist/Peers.h"
#include "dist/Wire.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "mp/MpBnb.h"
#include "mp/Serialize.h"
#include "obs/Instruments.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace mutk;
using namespace mutk::dist;

namespace {

/// Reserves a localhost TCP port: bind(0), read it back, close. The
/// small race against other processes re-binding it is acceptable in
/// tests; SO_REUSEADDR lets the real listener take it over.
int reservePort() {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = 0;
  EXPECT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  socklen_t Len = sizeof(Addr);
  EXPECT_EQ(::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  int Port = ntohs(Addr.sin_port);
  ::close(Fd);
  return Port;
}

std::vector<PeerSpec> localPeers(const std::vector<int> &Ports) {
  std::vector<PeerSpec> Peers;
  for (std::size_t I = 0; I < Ports.size(); ++I)
    Peers.push_back({static_cast<int>(I), "127.0.0.1", Ports[I]});
  return Peers;
}

/// Polls \p Pred every few ms until it holds or \p Seconds elapse.
bool waitFor(double Seconds, const std::function<bool()> &Pred) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(Seconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

BuildRequest inlineRequest(DistanceMatrix M) {
  BuildRequest R;
  R.Matrix = std::move(M);
  return R;
}

/// A request that takes seconds to solve (the pipeline is cubic-ish in
/// the species count) while staying tiny on the wire — used to pin a
/// single-worker service so jobs queued behind it stay stealable. Cache
/// off so repeated pins never short-circuit.
BuildRequest slowRequest(std::uint64_t Seed, std::int32_t Species = 1600) {
  BuildRequest R;
  R.Generator = GeneratorKind::Uniform;
  R.GenSpecies = Species;
  R.GenSeed = Seed;
  R.UseCache = false;
  return R;
}

//===----------------------------------------------------------------------===//
// Wire framing: typed errors
//===----------------------------------------------------------------------===//

TEST(Wire, FrameRoundTrip) {
  DistFrame In;
  In.Verb = DistVerb::CacheLookup;
  In.Seq = 42;
  In.Body = {1, 2, 3, 4};
  std::vector<std::uint8_t> Payload = encodeDistFrame(In);
  DistFrame Out;
  ASSERT_EQ(decodeDistFrame(Payload, Out), FrameError::None);
  EXPECT_EQ(Out.Verb, In.Verb);
  EXPECT_EQ(Out.Seq, In.Seq);
  EXPECT_EQ(Out.Body, In.Body);
  EXPECT_EQ(distFrameWireBytes(In), 4u + Payload.size());
}

TEST(Wire, DecodeRejectsTruncatedPrelude) {
  DistFrame Out;
  // Shorter than [u8 verb][u64 seq].
  EXPECT_EQ(decodeDistFrame({1, 2, 3}, Out), FrameError::Truncated);
  EXPECT_EQ(decodeDistFrame({}, Out), FrameError::Truncated);
}

TEST(Wire, DecodeRejectsGarbageVerb) {
  std::vector<std::uint8_t> Payload(9, 0);
  Payload[0] = MaxDistVerb + 1;
  DistFrame Out;
  EXPECT_EQ(decodeDistFrame(Payload, Out), FrameError::BadVerb);
  Payload[0] = 0; // verbs start at 1
  EXPECT_EQ(decodeDistFrame(Payload, Out), FrameError::BadVerb);
  EXPECT_STREQ(frameErrorName(FrameError::BadVerb), "bad_verb");
}

TEST(Wire, ReadEofOnCleanClose) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ::close(Fds[1]);
  DistFrame Out;
  EXPECT_EQ(readDistFrame(Fds[0], Out), FrameError::Eof);
  ::close(Fds[0]);
}

TEST(Wire, ReadTruncatedMidFrame) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // Announce 100 bytes, deliver 10, die.
  std::uint8_t Header[4] = {100, 0, 0, 0};
  ASSERT_TRUE(writeAllBytes(Fds[1], Header, 4));
  std::uint8_t Partial[10] = {};
  ASSERT_TRUE(writeAllBytes(Fds[1], Partial, 10));
  ::close(Fds[1]);
  DistFrame Out;
  EXPECT_EQ(readDistFrame(Fds[0], Out), FrameError::Truncated);
  ::close(Fds[0]);
}

TEST(Wire, ReadRejectsOversizedLengthPrefix) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::uint32_t Huge = MaxFrameBytes + 1;
  std::uint8_t Header[4];
  std::memcpy(Header, &Huge, 4);
  ASSERT_TRUE(writeAllBytes(Fds[1], Header, 4));
  DistFrame Out;
  // Rejected from the prefix alone: the body was never sent, so a
  // decode that tried to read it would block forever instead.
  EXPECT_EQ(readDistFrame(Fds[0], Out), FrameError::Oversized);
  ::close(Fds[1]);
  ::close(Fds[0]);
}

TEST(Wire, ReadRejectsGarbageTag) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::uint8_t Frame[4 + 9] = {9, 0, 0, 0, 0xEE};
  ASSERT_TRUE(writeAllBytes(Fds[1], Frame, sizeof(Frame)));
  DistFrame Out;
  EXPECT_EQ(readDistFrame(Fds[0], Out), FrameError::BadVerb);
  ::close(Fds[1]);
  ::close(Fds[0]);
}

TEST(Wire, WriteReadAcrossSocket) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  DistFrame In;
  In.Verb = DistVerb::Heartbeat;
  In.Seq = 0;
  In.Body = {9, 9, 9};
  ASSERT_TRUE(writeDistFrame(Fds[1], In));
  DistFrame Out;
  ASSERT_EQ(readDistFrame(Fds[0], Out), FrameError::None);
  EXPECT_EQ(Out.Verb, DistVerb::Heartbeat);
  EXPECT_EQ(Out.Body, In.Body);
  ::close(Fds[1]);
  ::close(Fds[0]);
}

//===----------------------------------------------------------------------===//
// Peer list, registry, ring
//===----------------------------------------------------------------------===//

TEST(Peers, ParsePeerList) {
  auto Peers = parsePeerList("alpha:7001,beta:7002,127.0.0.1:7003");
  ASSERT_TRUE(Peers.has_value());
  ASSERT_EQ(Peers->size(), 3u);
  EXPECT_EQ((*Peers)[0].Id, 0);
  EXPECT_EQ((*Peers)[0].Host, "alpha");
  EXPECT_EQ((*Peers)[0].Port, 7001);
  EXPECT_EQ((*Peers)[2].Host, "127.0.0.1");
  EXPECT_EQ((*Peers)[2].Port, 7003);
}

TEST(Peers, ParsePeerListRejectsMalformed) {
  EXPECT_FALSE(parsePeerList("").has_value());
  EXPECT_FALSE(parsePeerList("hostonly").has_value());
  EXPECT_FALSE(parsePeerList("host:").has_value());
  EXPECT_FALSE(parsePeerList(":7001").has_value());
  EXPECT_FALSE(parsePeerList("a:1,,b:2").has_value());
  EXPECT_FALSE(parsePeerList("a:0").has_value());
  EXPECT_FALSE(parsePeerList("a:99999").has_value());
  EXPECT_FALSE(parsePeerList("a:12x4").has_value());
}

TEST(Peers, RegistryDeathAndRevival) {
  auto Peers = localPeers({1, 2, 3});
  PeerRegistry Reg(Peers, 0, /*DeadAfterSeconds=*/0.2);
  // Startup grace: everyone counts toward the ring at first.
  EXPECT_EQ(Reg.aliveIds(), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(Reg.sweep().empty());

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  Reg.markAlive(1); // peer 1 heartbeats just in time
  std::vector<int> Died = Reg.sweep();
  EXPECT_EQ(Died, (std::vector<int>{2}));
  EXPECT_EQ(Reg.aliveIds(), (std::vector<int>{0, 1}));
  EXPECT_FALSE(Reg.isAlive(2));

  // A later heartbeat revives; the caller is told to rebuild the ring.
  EXPECT_TRUE(Reg.markAlive(2));
  EXPECT_TRUE(Reg.isAlive(2));
  EXPECT_EQ(Reg.aliveIds(), (std::vector<int>{0, 1, 2}));
}

TEST(Peers, RegistryFailureIsSuspicionNotDeath) {
  PeerRegistry Reg(localPeers({1, 2}), 0, 5.0);
  Reg.markAlive(1);
  Reg.noteFailure(1);
  // A failed link marks Suspect, but death still waits for the timeout.
  EXPECT_TRUE(Reg.isAlive(1));
  EXPECT_EQ(Reg.snapshot()[1].State, PeerState::Suspect);
  EXPECT_TRUE(Reg.sweep().empty());
}

TEST(Peers, RingCoversKeySpace) {
  ShardRing Ring({0, 1, 2}, 64);
  double Total = 0.0;
  for (int Peer : {0, 1, 2}) {
    double Share = Ring.ownedShare(Peer);
    EXPECT_GT(Share, 0.0);
    Total += Share;
  }
  EXPECT_NEAR(Total, 1.0, 1e-12);
  EXPECT_EQ(Ring.peers(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ShardRing().ownerOf(7), -1);
  EXPECT_NEAR(ShardRing({5}, 8).ownedShare(5), 1.0, 1e-12);
}

TEST(Peers, RingDeathOnlyRemapsTheDeadArc) {
  ShardRing Full({0, 1, 2}, 64);
  ShardRing Without1({0, 2}, 64);
  int Remapped = 0;
  for (std::uint64_t Key = 0; Key < 2000; ++Key) {
    int Before = Full.ownerOf(Key);
    int After = Without1.ownerOf(Key);
    if (Before != 1)
      EXPECT_EQ(After, Before) << "key " << Key
                               << " moved between surviving peers";
    else
      ++Remapped;
  }
  // Peer 1 owned roughly a third of the space; its keys moved.
  EXPECT_GT(Remapped, 200);
}

//===----------------------------------------------------------------------===//
// Socket MpEndpoints
//===----------------------------------------------------------------------===//

TEST(MpSocket, MsgBodyRoundTrip) {
  std::vector<std::uint8_t> Body = encodeMpMsgBody(1, 2, MpTagWork, {5, 6});
  int Src = 0, Dest = 0, Tag = 0;
  std::vector<std::uint8_t> Payload;
  ASSERT_TRUE(decodeMpMsgBody(Body, Src, Dest, Tag, Payload));
  EXPECT_EQ(Src, 1);
  EXPECT_EQ(Dest, 2);
  EXPECT_EQ(Tag, MpTagWork);
  EXPECT_EQ(Payload, (std::vector<std::uint8_t>{5, 6}));
  Body.resize(11); // shorter than the fixed prelude
  EXPECT_FALSE(decodeMpMsgBody(Body, Src, Dest, Tag, Payload));
}

TEST(MpSocket, SlaveSeesSyntheticTerminateOnBrokenLink) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  SlaveSocketEndpoint Slave(Fds[0], 1, 2);
  ::close(Fds[1]); // master dies
  Message Msg = Slave.recv();
  EXPECT_EQ(Msg.Tag, MpTagTerminate);
  EXPECT_TRUE(Slave.failed());
  // Sends on a broken link drop silently instead of crashing the solve.
  Slave.send(0, MpTagStats, {1});
  ::close(Fds[0]);
}

TEST(MpSocket, MasterRelaysWorkerToWorkerFrames) {
  int PairA[2], PairB[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, PairA), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, PairB), 0);
  {
    MasterSocketEndpoint Master({PairA[0], PairB[0]});
    SlaveSocketEndpoint S1(PairA[1], 1, 3);
    SlaveSocketEndpoint S2(PairB[1], 2, 3);
    EXPECT_EQ(Master.size(), 3);

    // Worker -> master lands in the inbox.
    S1.send(0, MpTagWorkRequest, {1});
    Message AtMaster = Master.recv();
    EXPECT_EQ(AtMaster.Source, 1);
    EXPECT_EQ(AtMaster.Tag, MpTagWorkRequest);

    // Worker -> worker is relayed by the master's reader thread with
    // the original source rank intact.
    S1.send(2, MpTagStealRequest, {42});
    Message AtS2 = S2.recv();
    EXPECT_EQ(AtS2.Source, 1);
    EXPECT_EQ(AtS2.Tag, MpTagStealRequest);
    EXPECT_EQ(AtS2.Payload, (std::vector<std::uint8_t>{42}));

    // Master -> worker.
    Master.send(1, MpTagUbUpdate, {9});
    Message AtS1 = S1.recv();
    EXPECT_EQ(AtS1.Source, 0);
    EXPECT_EQ(AtS1.Tag, MpTagUbUpdate);

    EXPECT_GE(Master.messagesSent(), 3u);
    EXPECT_FALSE(Master.trafficByTag().empty());
    EXPECT_TRUE(Master.failedRanks().empty());
  }
  ::close(PairA[1]);
  ::close(PairB[1]);
}

//===----------------------------------------------------------------------===//
// Distributed B&B sessions
//===----------------------------------------------------------------------===//

TEST(DistBnb, SessionSpecRoundTrip) {
  MpSessionSpec Spec;
  Spec.Rank = 2;
  Spec.WorldSize = 5;
  Spec.ThreeThree = ThreeThreeMode::ThirdSpecies;
  Spec.Epsilon = 1e-7;
  Spec.Proto.WorkStealing = true;
  Spec.Proto.StealDepthBound = 6;
  Spec.Proto.PeerUbBroadcast = true;
  auto Back = decodeMpSessionSpec(encodeMpSessionSpec(Spec));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Rank, 2);
  EXPECT_EQ(Back->WorldSize, 5);
  EXPECT_EQ(Back->ThreeThree, ThreeThreeMode::ThirdSpecies);
  EXPECT_DOUBLE_EQ(Back->Epsilon, 1e-7);
  EXPECT_TRUE(Back->Proto.WorkStealing);
  EXPECT_EQ(Back->Proto.StealDepthBound, 6);
  EXPECT_TRUE(Back->Proto.PeerUbBroadcast);
}

TEST(DistBnb, SessionSpecRejectsCorruption) {
  MpSessionSpec Spec;
  std::vector<std::uint8_t> Bytes = encodeMpSessionSpec(Spec);
  std::vector<std::uint8_t> Short(Bytes.begin(), Bytes.end() - 1);
  EXPECT_FALSE(decodeMpSessionSpec(Short).has_value());
  Bytes.push_back(0); // trailing garbage
  EXPECT_FALSE(decodeMpSessionSpec(Bytes).has_value());
  // Rank outside 1..WorldSize-1.
  MpSessionSpec Bad;
  Bad.Rank = 3;
  Bad.WorldSize = 2;
  EXPECT_FALSE(decodeMpSessionSpec(encodeMpSessionSpec(Bad)).has_value());
}

/// Runs a full master/slave search over socketpairs: the master loop in
/// this thread, each slave session in its own thread, exactly as the
/// cluster serves them over TCP.
double solveOverSocketPairs(const DistanceMatrix &M, int Slaves,
                            const MpProtocolOptions &Proto) {
  std::vector<int> MasterFds;
  std::vector<std::thread> Sessions;
  std::vector<int> SlaveFds;
  for (int I = 0; I < Slaves; ++I) {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    MasterFds.push_back(Fds[0]);
    SlaveFds.push_back(Fds[1]);
    MpSessionSpec Spec;
    Spec.Rank = I + 1;
    Spec.WorldSize = Slaves + 1;
    Spec.Proto = Proto;
    Sessions.emplace_back([Fd = Fds[1], Spec] {
      SlaveSessionOutcome Outcome = serveMpSlaveSession(Fd, Spec);
      EXPECT_FALSE(Outcome.Failed);
    });
  }
  MpMutResult Result;
  {
    MasterSocketEndpoint Master(std::move(MasterFds));
    Result = runMpMaster(Master, M, {}, Proto);
    EXPECT_TRUE(Master.failedRanks().empty());
    EXPECT_GT(Master.messagesSent(), 0u);
  }
  for (std::thread &T : Sessions)
    T.join();
  for (int Fd : SlaveFds)
    ::close(Fd);
  EXPECT_TRUE(Result.Tree.dominatesMatrix(M));
  return Result.Cost;
}

TEST(DistBnb, SocketWorldMatchesSequential) {
  DistanceMatrix M = uniformRandomMetric(11, 5);
  double Sequential = solveMutSequential(M).Cost;
  MpProtocolOptions Plain;
  EXPECT_NEAR(solveOverSocketPairs(M, 1, Plain), Sequential, 1e-9);
  EXPECT_NEAR(solveOverSocketPairs(M, 3, Plain), Sequential, 1e-9);
}

TEST(DistBnb, SocketWorldMatchesSequentialWithStealing) {
  DistanceMatrix M = uniformRandomMetric(11, 8);
  double Sequential = solveMutSequential(M).Cost;
  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  Proto.PeerUbBroadcast = true;
  EXPECT_NEAR(solveOverSocketPairs(M, 3, Proto), Sequential, 1e-9);
}

TEST(DistBnb, SolveOverPeersAgainstLiveNodes) {
  std::vector<int> Ports = {reservePort(), reservePort()};
  auto Peers = localPeers(Ports);
  ServiceOptions SvcOpts;
  SvcOpts.NumWorkers = 1;
  TreeService SvcA(SvcOpts), SvcB(SvcOpts);
  ClusterOptions OptsA, OptsB;
  OptsA.SelfId = 0;
  OptsA.Peers = Peers;
  OptsA.StealJobs = false;
  OptsB = OptsA;
  OptsB.SelfId = 1;
  ClusterNode NodeA(SvcA, OptsA), NodeB(SvcB, OptsB);
  std::string Error;
  ASSERT_TRUE(NodeA.start(&Error)) << Error;
  ASSERT_TRUE(NodeB.start(&Error)) << Error;

  DistanceMatrix M = uniformRandomMetric(12, 3);
  double Sequential = solveMutSequential(M).Cost;
  std::vector<int> FailedRanks;
  auto Result =
      solveMutOverPeers(M, Peers, {}, {}, 5.0, &Error, &FailedRanks);
  ASSERT_TRUE(Result.has_value()) << Error;
  EXPECT_NEAR(Result->Cost, Sequential, 1e-9);
  EXPECT_TRUE(FailedRanks.empty());
  EXPECT_GT(Result->MessagesSent, 0u);
  EXPECT_GT(Result->BytesSent, 0u);
  EXPECT_FALSE(Result->Traffic.empty());
  EXPECT_EQ(Result->Workers.size(), Peers.size());

  NodeA.stop();
  NodeB.stop();
}

TEST(DistBnb, SolveOverPeersFailsCleanlyWithoutListener) {
  // Nobody listens on the reserved port: all-or-nothing startup.
  std::vector<PeerSpec> Peers = {{0, "127.0.0.1", reservePort()}};
  std::string Error;
  auto Result = solveMutOverPeers(uniformRandomMetric(8, 1), Peers, {}, {},
                                  0.25, &Error);
  EXPECT_FALSE(Result.has_value());
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Cluster nodes: membership, cache sharding, stealing, death sweep
//===----------------------------------------------------------------------===//

/// Three services + three cluster nodes on localhost, wired and started.
struct ThreeNodeCluster {
  std::vector<int> Ports;
  std::vector<std::unique_ptr<TreeService>> Services;
  std::vector<std::unique_ptr<ClusterNode>> Nodes;

  explicit ThreeNodeCluster(
      const std::function<void(int, ServiceOptions &, ClusterOptions &)>
          &Tune = {}) {
    Ports = {reservePort(), reservePort(), reservePort()};
    auto Peers = localPeers(Ports);
    for (int I = 0; I < 3; ++I) {
      ServiceOptions SvcOpts;
      ClusterOptions Opts;
      Opts.SelfId = I;
      Opts.Peers = Peers;
      Opts.HeartbeatSeconds = 0.05;
      Opts.DeadAfterSeconds = 1.0;
      Opts.StealPollSeconds = 0.02;
      if (Tune)
        Tune(I, SvcOpts, Opts);
      Services.push_back(std::make_unique<TreeService>(SvcOpts));
      Nodes.push_back(std::make_unique<ClusterNode>(*Services[I], Opts));
    }
    for (auto &Node : Nodes) {
      std::string Error;
      EXPECT_TRUE(Node->start(&Error)) << Error;
    }
  }

  ~ThreeNodeCluster() {
    for (auto &Node : Nodes)
      Node->stop();
    for (auto &Svc : Services)
      Svc->stop();
  }

  /// True once every node judges every peer Alive (not just in grace).
  bool allAlive() {
    for (auto &Node : Nodes)
      for (const PeerRegistry::PeerInfo &Info : Node->registry().snapshot())
        if (Info.State != PeerState::Alive)
          return false;
    return true;
  }
};

TEST(Cluster, PeersConvergeAndAgreeOnOwnership) {
  ThreeNodeCluster C;
  ASSERT_TRUE(waitFor(10.0, [&] { return C.allAlive(); }));
  for (std::uint64_t Key = 1; Key <= 500; ++Key) {
    int Owner = C.Nodes[0]->ownerOf(Key);
    EXPECT_GE(Owner, 0);
    EXPECT_EQ(C.Nodes[1]->ownerOf(Key), Owner);
    EXPECT_EQ(C.Nodes[2]->ownerOf(Key), Owner);
  }
}

TEST(Cluster, StatsJsonCarriesClusterSection) {
  ThreeNodeCluster C;
  std::string Json = C.Nodes[0]->statsJson();
  EXPECT_NE(Json.find("\"self\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"peers\":["), std::string::npos);
  EXPECT_NE(Json.find("\"shard_share\""), std::string::npos);
  // The service merges it as the `cluster` section of StatsJson.
  std::string Merged = C.Services[0]->statsJson();
  EXPECT_NE(Merged.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(Merged.find("\"jobs_lent\""), std::string::npos);
}

TEST(Cluster, CacheEntryCodecRoundTrip) {
  MutResult Solved = solveMutSequential(uniformRandomMetric(8, 2));
  CachedSolution Value;
  Value.Tree = Solved.Tree;
  Value.Cost = Solved.Cost;
  Value.Exact = true;
  Value.Block = true;
  Value.Bytes = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> Encoded = encodeCacheEntry(77, Value);
  auto Back = decodeCacheEntry(Encoded);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->first, 77u);
  EXPECT_DOUBLE_EQ(Back->second.Cost, Value.Cost);
  EXPECT_TRUE(Back->second.Exact);
  EXPECT_TRUE(Back->second.Block);
  EXPECT_EQ(Back->second.Bytes, Value.Bytes);
  EXPECT_DOUBLE_EQ(Back->second.Tree.weight(), Value.Tree.weight());
  // Truncation is rejected, never mis-decoded.
  Encoded.resize(Encoded.size() - 1);
  EXPECT_FALSE(decodeCacheEntry(Encoded).has_value());
}

TEST(Cluster, ShardedLookupServesRemoteInsert) {
  ThreeNodeCluster C;
  ASSERT_TRUE(waitFor(10.0, [&] { return C.allAlive(); }));

  MutResult Solved = solveMutSequential(uniformRandomMetric(8, 4));
  CachedSolution Value;
  Value.Tree = Solved.Tree;
  Value.Cost = Solved.Cost;
  Value.Exact = true;
  Value.Bytes = {10, 20, 30};

  // A key node 1 owns, seen identically from node 0.
  std::uint64_t Key = 1;
  while (C.Nodes[0]->ownerOf(Key) != 1)
    ++Key;

  // Node 0 forwards the insert to the owner, then its next lookup for
  // the key is answered by that owner. Both frames share one link, so
  // FIFO ordering makes the hit deterministic.
  C.Nodes[0]->insert(Key, Value, CacheTier::Whole);
  auto Hit = C.Nodes[0]->lookup(Key, Value.Bytes, CacheTier::Whole);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Cost, Value.Cost);
  EXPECT_TRUE(Hit->Exact);

  // A remote entry is no more trusted than a local one: mismatched
  // canonical identity bytes are a collision, not a hit.
  auto Collision = C.Nodes[0]->lookup(Key, {9, 9, 9}, CacheTier::Whole);
  EXPECT_FALSE(Collision.has_value());

  // The namespace is part of the identity too: a whole-matrix entry
  // never answers a block-tier probe.
  auto WrongTier = C.Nodes[0]->lookup(Key, Value.Bytes, CacheTier::Block);
  EXPECT_FALSE(WrongTier.has_value());

  // Keys this node owns never leave the process.
  std::uint64_t OwnKey = 1;
  while (C.Nodes[0]->ownerOf(OwnKey) != 0)
    ++OwnKey;
  EXPECT_FALSE(
      C.Nodes[0]->lookup(OwnKey, Value.Bytes, CacheTier::Whole).has_value());
}

TEST(Cluster, WholeMatrixHitTravelsAcrossPeers) {
  ThreeNodeCluster C;
  ASSERT_TRUE(waitFor(10.0, [&] { return C.allAlive(); }));

  DistanceMatrix M = uniformRandomMetric(10, 6);
  BuildResponse First = C.Services[0]->submit(inlineRequest(M));
  ASSERT_TRUE(First.ok()) << First.Message;
  EXPECT_FALSE(First.CacheHit);

  // The solution's shard owner has it now (one-way insert; give the
  // frame a moment). Wherever the owner is, node 1 must answer the
  // same matrix from the cluster cache without running a solver.
  BuildResponse Second;
  ASSERT_TRUE(waitFor(5.0, [&] {
    Second = C.Services[1]->submit(inlineRequest(M));
    return Second.ok() && Second.CacheHit;
  })) << "peer never saw the cached solution";
  EXPECT_NEAR(Second.Cost, First.Cost, 1e-9);
  EXPECT_TRUE(Second.Exact);
}

TEST(Cluster, BlockSolvedOnOnePeerServesAnother) {
  ThreeNodeCluster C;
  ASSERT_TRUE(waitFor(10.0, [&] { return C.allAlive(); }));

  // X and Y are different whole matrices sharing one hard module: a
  // near-equidistant 6-species block (no internal compact sets, so it
  // condenses whole and is big enough for the remote size floor).
  auto HardModule = [](std::uint64_t Seed) {
    return scaledToMax(uniformRandomMetric(6, Seed, 18.0, 20.0), 20.0);
  };
  auto Compose = [&](std::uint64_t SeedA, std::uint64_t SeedB) {
    DistanceMatrix Out(12);
    for (int I = 0; I < 12; ++I)
      for (int J = I + 1; J < 12; ++J)
        Out.set(I, J, 80.0);
    DistanceMatrix A = HardModule(SeedA), B = HardModule(SeedB);
    for (int I = 0; I < 6; ++I)
      for (int J = I + 1; J < 6; ++J) {
        Out.set(I, J, A.at(I, J));
        Out.set(6 + I, 6 + J, B.at(I, J));
      }
    return Out;
  };
  DistanceMatrix X = Compose(1, 2);
  DistanceMatrix Y = Compose(1, 3);

  // The shared module's decomposition — and so its blocks' relabeling-
  // invariant fingerprints — is identical whether the module is solved
  // alone or inside a composition. Record its biggest block's identity
  // by running a local pipeline over the module with spy hooks.
  std::uint64_t SharedKey = 0;
  std::vector<std::uint8_t> SharedBytes;
  {
    BlockCacheHooks Spy;
    int Biggest = 0;
    Spy.Lookup = [&](std::uint64_t Key, const std::vector<std::uint8_t> &Bytes)
        -> std::optional<BlockCacheEntry> {
      int N = canonicalSpeciesCount(Bytes);
      if (N > Biggest) {
        Biggest = N;
        SharedKey = Key;
        SharedBytes = Bytes;
      }
      return std::nullopt;
    };
    PipelineOptions PipeOpts;
    PipeOpts.BlockCache = &Spy;
    buildCompactSetTree(HardModule(1), PipeOpts);
    // Must clear the remote size floor (ServiceOptions::RemoteBlockMinSize).
    ASSERT_GE(Biggest, 3);
  }

  // Node 0 solves X, which stores every block subtree under its raw
  // fingerprint and forwards the big ones to their shard owners. Wait
  // for the shared block to become reachable from node 1 — either in
  // its own shard (the forward landed there) or at the owning peer.
  BuildResponse First = C.Services[0]->submit(inlineRequest(X));
  ASSERT_TRUE(First.ok()) << First.Message;
  EXPECT_TRUE(First.Exact);

  ASSERT_TRUE(waitFor(5.0, [&] {
    return C.Services[1]->cacheLookup(SharedKey, SharedBytes).has_value() ||
           C.Nodes[1]->lookup(SharedKey, SharedBytes, CacheTier::Block)
               .has_value();
  })) << "shared block never became reachable from node 1";

  // Node 1 has solved nothing, yet Y's shared module must replay from
  // the cluster's block tier; only the fresh module runs a solver.
  BuildResponse Second = C.Services[1]->submit(inlineRequest(Y));
  ASSERT_TRUE(Second.ok()) << Second.Message;
  EXPECT_FALSE(Second.CacheHit);
  EXPECT_GE(Second.BlockCacheHits, 1u);

  // Reuse across the ring must not change the answer.
  ServiceOptions ColdOptions;
  ColdOptions.NumWorkers = 1;
  ColdOptions.CacheCapacity = 0;
  TreeService Cold(ColdOptions);
  BuildResponse ColdResp = Cold.submit(inlineRequest(Y));
  ASSERT_TRUE(ColdResp.ok()) << ColdResp.Message;
  EXPECT_EQ(ColdResp.Newick, Second.Newick);
  EXPECT_NEAR(ColdResp.Cost, Second.Cost, 1e-9);
  Cold.stop();
}

TEST(Cluster, IdlePeersStealQueuedJobs) {
  obs::DistInstruments &Obs = obs::distInstruments();
  std::uint64_t StolenBefore = Obs.JobsStolen.value();
  std::uint64_t LentBefore = Obs.JobsLent.value();

  ThreeNodeCluster C([](int Id, ServiceOptions &Svc, ClusterOptions &) {
    if (Id == 0)
      Svc.NumWorkers = 1; // node 0 backs up; 1 and 2 idle-steal
  });
  ASSERT_TRUE(waitFor(10.0, [&] { return C.allAlive(); }));

  // Pin node 0's only worker on a long solve, then queue work the idle
  // peers can take.
  auto LongFuture = C.Services[0]->submitAsync(slowRequest(9));
  ASSERT_TRUE(waitFor(10.0, [&] { return C.Services[0]->inFlight() >= 1; }));

  std::vector<DistanceMatrix> Smalls;
  std::vector<std::future<BuildResponse>> Futures;
  for (std::uint64_t Seed = 0; Seed < 3; ++Seed) {
    Smalls.push_back(uniformRandomMetric(11, 40 + Seed));
    Futures.push_back(C.Services[0]->submitAsync(inlineRequest(Smalls.back())));
  }

  EXPECT_TRUE(waitFor(30.0, [&] {
    return Obs.JobsStolen.value() > StolenBefore;
  })) << "no peer ever stole from the backed-up node";

  // Every answer matches what a standalone service produces for the
  // same request, no matter which node solved it.
  ServiceOptions RefOpts;
  RefOpts.NumWorkers = 1;
  TreeService Ref(RefOpts);
  for (std::size_t I = 0; I < Futures.size(); ++I) {
    BuildResponse R = Futures[I].get();
    ASSERT_TRUE(R.ok()) << R.Message;
    BuildResponse Expected = Ref.submit(inlineRequest(Smalls[I]));
    ASSERT_TRUE(Expected.ok());
    EXPECT_NEAR(R.Cost, Expected.Cost, 1e-9);
    EXPECT_EQ(R.Newick, Expected.Newick);
  }
  Ref.stop();
  BuildResponse LongR = LongFuture.get();
  ASSERT_TRUE(LongR.ok());
  EXPECT_GT(Obs.JobsLent.value(), LentBefore);
}

TEST(Cluster, DeadThiefJobsAreReenqueued) {
  obs::DistInstruments &Obs = obs::distInstruments();
  std::uint64_t ReenqueuedBefore = Obs.JobsReenqueued.value();

  // Two seats: node 0 is real, seat 1 is played by this test over a raw
  // socket — a thief we can kill without mercy or cleanup.
  std::vector<int> Ports = {reservePort(), reservePort()};
  ServiceOptions SvcOpts;
  SvcOpts.NumWorkers = 1;
  TreeService Svc(SvcOpts);
  ClusterOptions Opts;
  Opts.SelfId = 0;
  Opts.Peers = localPeers(Ports);
  Opts.HeartbeatSeconds = 0.05;
  Opts.DeadAfterSeconds = 0.4;
  Opts.StealJobs = false;
  ClusterNode Node(Svc, Opts);
  std::string Error;
  ASSERT_TRUE(Node.start(&Error)) << Error;

  // Busy the only worker, then queue the job the thief will take.
  auto LongFuture = Svc.submitAsync(slowRequest(2));
  ASSERT_TRUE(waitFor(10.0, [&] { return Svc.inFlight() >= 1; }));
  DistanceMatrix Small = uniformRandomMetric(10, 3);
  auto SmallFuture = Svc.submitAsync(inlineRequest(Small));

  int Thief = connectTcpTimeout("127.0.0.1", Node.port(), 2.0, &Error);
  ASSERT_GE(Thief, 0) << Error;
  DistFrame Hello;
  Hello.Verb = DistVerb::Hello;
  {
    ByteWriter Writer;
    Writer.writeU32(1);
    Hello.Body = Writer.take();
  }
  ASSERT_TRUE(writeDistFrame(Thief, Hello));

  DistFrame Steal;
  Steal.Verb = DistVerb::StealJob;
  Steal.Seq = 7;
  ASSERT_TRUE(writeDistFrame(Thief, Steal));
  DistFrame Grant;
  ASSERT_EQ(readDistFrame(Thief, Grant), FrameError::None);
  ASSERT_EQ(Grant.Verb, DistVerb::JobGrant);
  EXPECT_EQ(Grant.Seq, 7u);
  {
    ByteReader Reader(Grant.Body);
    std::uint64_t Token = 0;
    std::vector<std::uint8_t> Encoded;
    ASSERT_TRUE(Reader.readU64(Token));
    ASSERT_TRUE(Reader.readBytes(Encoded));
    EXPECT_GT(Token, 0u);
    // The grant carries a decodable protocol frame of the lent job.
    auto Decoded = decodeRequest(Encoded);
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_EQ(Decoded->Build.Matrix.size(), Small.size());
  }
  EXPECT_EQ(Svc.lentJobCount(), 1u);

  // The thief dies holding the job: no result, no goodbye. The victim's
  // death sweep must reclaim it and answer the original caller.
  ::close(Thief);
  EXPECT_TRUE(waitFor(15.0, [&] {
    return Obs.JobsReenqueued.value() > ReenqueuedBefore;
  })) << "death sweep never re-enqueued the lent job";

  BuildResponse SmallR = SmallFuture.get();
  ASSERT_TRUE(SmallR.ok()) << SmallR.Message;
  EXPECT_NEAR(SmallR.Cost, solveMutSequential(Small).Cost, 1e-9);
  ASSERT_TRUE(LongFuture.get().ok());
  EXPECT_EQ(Svc.lentJobCount(), 0u);

  Node.stop();
  Svc.stop();
}

//===----------------------------------------------------------------------===//
// SIGKILL drill: real peer processes, hard-killed mid-steal
//===----------------------------------------------------------------------===//

// fork() under ThreadSanitizer deadlocks sporadically when the parent
// holds runtime locks, so the hard-kill drill runs on the Release and
// ASan legs only (matching the persist_test convention).
#if !defined(__SANITIZE_THREAD__)

namespace {

/// SIGKILLs and reaps a child on scope exit, test failures included.
struct ChildGuard {
  pid_t Pid = -1;
  ~ChildGuard() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
  }
};

/// Child body: one full peer (service + cluster node) that steals
/// aggressively until killed. Never returns.
[[noreturn]] void runPeerProcess(int SelfId, const std::vector<int> &Ports) {
  ServiceOptions SvcOpts;
  SvcOpts.NumWorkers = 2;
  TreeService Svc(SvcOpts);
  ClusterOptions Opts;
  Opts.SelfId = SelfId;
  Opts.Peers = localPeers(Ports);
  Opts.HeartbeatSeconds = 0.05;
  Opts.DeadAfterSeconds = 1.0;
  Opts.StealPollSeconds = 0.02;
  ClusterNode Node(Svc, Opts);
  std::string Error;
  if (!Node.start(&Error))
    ::_exit(2);
  for (;;)
    ::pause();
}

} // namespace

TEST(ClusterDrill, SigkilledPeerLosesNoJobs) {
  obs::DistInstruments &Obs = obs::distInstruments();
  std::uint64_t ReenqueuedBefore = Obs.JobsReenqueued.value();

  std::vector<int> Ports = {reservePort(), reservePort(), reservePort()};
  ChildGuard Peer1, Peer2;
  Peer1.Pid = ::fork();
  ASSERT_GE(Peer1.Pid, 0);
  if (Peer1.Pid == 0)
    runPeerProcess(1, Ports);
  Peer2.Pid = ::fork();
  ASSERT_GE(Peer2.Pid, 0);
  if (Peer2.Pid == 0)
    runPeerProcess(2, Ports);

  ServiceOptions SvcOpts;
  SvcOpts.NumWorkers = 1;
  TreeService Svc(SvcOpts);
  ClusterOptions Opts;
  Opts.SelfId = 0;
  Opts.Peers = localPeers(Ports);
  Opts.HeartbeatSeconds = 0.05;
  Opts.DeadAfterSeconds = 1.0;
  Opts.StealJobs = false; // this node is the victim, not a thief
  ClusterNode Node(Svc, Opts);
  std::string Error;
  ASSERT_TRUE(Node.start(&Error)) << Error;
  ASSERT_TRUE(waitFor(20.0, [&] {
    for (const PeerRegistry::PeerInfo &Info : Node.registry().snapshot())
      if (Info.State != PeerState::Alive)
        return false;
    return true;
  })) << "forked peers never came up";

  // One long job pins the single local worker; the rest queue up for
  // the children to steal over TCP. The first stealable job is itself
  // long, so the thief that takes it is still mid-solve when killed.
  std::vector<DistanceMatrix> Smalls = {uniformRandomMetric(11, 23),
                                        uniformRandomMetric(11, 24)};
  std::vector<std::future<BuildResponse>> Futures;
  Futures.push_back(Svc.submitAsync(slowRequest(21)));
  ASSERT_TRUE(waitFor(10.0, [&] { return Svc.inFlight() >= 1; }));
  Futures.push_back(Svc.submitAsync(slowRequest(22)));
  for (const DistanceMatrix &M : Smalls)
    Futures.push_back(Svc.submitAsync(inlineRequest(M)));

  // Wait until at least one job is physically lent out, then SIGKILL
  // both thieves mid-solve.
  ASSERT_TRUE(waitFor(30.0, [&] { return Svc.lentJobCount() >= 1; }))
      << "children never stole a job";
  ASSERT_EQ(::kill(Peer1.Pid, SIGKILL), 0);
  ASSERT_EQ(::kill(Peer2.Pid, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Peer1.Pid, &Status, 0), Peer1.Pid);
  EXPECT_TRUE(WIFSIGNALED(Status));
  ASSERT_EQ(::waitpid(Peer2.Pid, &Status, 0), Peer2.Pid);
  EXPECT_TRUE(WIFSIGNALED(Status));
  Peer1.Pid = Peer2.Pid = -1;

  // The death sweep reclaims whatever was in flight at the kill...
  EXPECT_TRUE(waitFor(30.0, [&] {
    return Svc.lentJobCount() == 0;
  })) << "lent jobs were never reclaimed";

  // ...and every admitted job is still answered; the small inline
  // matrices additionally match a standalone service's answer no matter
  // which process ended up solving them.
  ServiceOptions RefOpts;
  RefOpts.NumWorkers = 1;
  TreeService Ref(RefOpts);
  for (std::size_t I = 0; I < Futures.size(); ++I) {
    BuildResponse R = Futures[I].get();
    ASSERT_TRUE(R.ok()) << "job " << I << ": " << R.Message;
    if (I >= 2) {
      BuildResponse Expected = Ref.submit(inlineRequest(Smalls[I - 2]));
      ASSERT_TRUE(Expected.ok());
      EXPECT_NEAR(R.Cost, Expected.Cost, 1e-9) << "job " << I;
    }
  }
  Ref.stop();
  EXPECT_GT(Obs.JobsReenqueued.value(), ReenqueuedBefore);

  Node.stop();
  Svc.stop();
}

#endif // !__SANITIZE_THREAD__

} // namespace
