//===- tests/edgecases_test.cpp - Cross-module hardening --------*- C++ -*-===//
//
// Edge cases and invariance properties that span modules: duplicate
// species (zero distances), permutation/scaling invariance, the
// 64-species bitmask boundary, and determinism.
//
//===----------------------------------------------------------------------===//

#include "bnb/SequentialBnb.h"
#include "bnb/Topology.h"
#include "compact/CompactSetPipeline.h"
#include "graph/CompactSets.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "parallel/ThreadedBnb.h"
#include "support/Rng.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mutk;

TEST(EdgeCases, DuplicateSpeciesZeroDistance) {
  // Species 0 and 1 are identical (distance 0): still a valid
  // pseudometric; solvers must cope and pair them at height 0.
  DistanceMatrix M(5);
  for (int I = 0; I < 5; ++I)
    for (int J = I + 1; J < 5; ++J)
      M.set(I, J, 10.0);
  M.set(0, 1, 0.0);
  ASSERT_TRUE(isMetric(M));

  MutResult R = solveMutSequential(M);
  EXPECT_TRUE(R.Stats.Complete);
  EXPECT_DOUBLE_EQ(R.Tree.leafDistance(0, 1), 0.0);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));

  PipelineResult P = buildCompactSetTree(M);
  EXPECT_TRUE(P.Tree.dominatesMatrix(M));
  EXPECT_EQ(P.Tree.numLeaves(), 5);
}

TEST(EdgeCases, OptimalCostIsPermutationInvariant) {
  Rng Rand(3);
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(9, Seed);
    double Cost = solveMutSequential(M).Cost;
    std::vector<int> Perm = Rand.permutation(9);
    DistanceMatrix Shuffled = M.permuted(Perm);
    EXPECT_NEAR(solveMutSequential(Shuffled).Cost, Cost, 1e-9)
        << "seed " << Seed;
  }
}

TEST(EdgeCases, CompactSetsArePermutationEquivariant) {
  Rng Rand(4);
  DistanceMatrix M = plantedClusterMetric(14, 8);
  std::vector<int> Perm = Rand.permutation(14);
  DistanceMatrix Shuffled = M.permuted(Perm);

  // Map the shuffled matrix's sets back through the permutation.
  auto Original = findCompactSets(M);
  auto Mapped = findCompactSets(Shuffled);
  std::vector<std::vector<int>> A, B;
  for (const CompactSet &S : Original)
    A.push_back(S.Members);
  for (const CompactSet &S : Mapped) {
    std::vector<int> Back;
    for (int Local : S.Members)
      Back.push_back(Perm[static_cast<std::size_t>(Local)]);
    std::sort(Back.begin(), Back.end());
    B.push_back(Back);
  }
  std::sort(A.begin(), A.end());
  std::sort(B.begin(), B.end());
  EXPECT_EQ(A, B);
}

TEST(EdgeCases, CostScalesLinearly) {
  DistanceMatrix M = uniformRandomMetric(8, 5);
  double Cost = solveMutSequential(M).Cost;
  DistanceMatrix Doubled(8);
  for (int I = 0; I < 8; ++I)
    for (int J = I + 1; J < 8; ++J)
      Doubled.set(I, J, 2.0 * M.at(I, J));
  EXPECT_NEAR(solveMutSequential(Doubled).Cost, 2.0 * Cost, 1e-9);
}

TEST(EdgeCases, CompactSetsInvariantUnderScaling) {
  DistanceMatrix M = plantedClusterMetric(12, 6);
  DistanceMatrix Scaled = scaledToMax(M, 1000.0);
  auto A = findCompactSets(M);
  auto B = findCompactSets(Scaled);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Members, B[I].Members);
}

TEST(EdgeCases, MetricClosureIsIdempotent) {
  DistanceMatrix Raw(10);
  Rng Rand(11);
  for (int I = 0; I < 10; ++I)
    for (int J = I + 1; J < 10; ++J)
      Raw.set(I, J, Rand.nextDouble(1.0, 100.0));
  DistanceMatrix Once = metricClosure(Raw);
  DistanceMatrix Twice = metricClosure(Once);
  EXPECT_TRUE(Once.approxEquals(Twice, 1e-12));
}

TEST(EdgeCases, TopologySupportsSpecies63) {
  // Exercise the top bit of the leaf mask: an easy (ultrametric)
  // 64-species instance must flow through the pipeline, whose largest
  // exact block stays tiny.
  DistanceMatrix M = randomUltrametricMatrix(64, 9);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_EQ(R.Tree.numLeaves(), 64);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
  // The realized matrix must match exactly (ultrametric input).
  EXPECT_TRUE(R.Tree.inducedMatrix().approxEquals(M, 1e-9));
}

TEST(EdgeCases, TopologyMaskBoundaryDirect) {
  // Insert species up to index 63 by hand along a caterpillar.
  DistanceMatrix M = randomUltrametricMatrix(64, 2);
  Topology T = Topology::initialPair(M);
  while (T.numPlaced() < 64)
    T = T.withNextSpeciesAt(T.numNodes() - 1, M);
  EXPECT_EQ(T.numPlaced(), 64);
  EXPECT_EQ(T.numNodes(), 2 * 64 - 1);
  EXPECT_EQ(leafCount(T.node(T.rootIndex()).Mask), 64);
}

TEST(EdgeCases, ThreadedSolverIsCostDeterministic) {
  DistanceMatrix M = uniformRandomMetric(12, 7);
  double First = solveMutThreaded(M, 4).Cost;
  for (int Run = 0; Run < 3; ++Run)
    EXPECT_DOUBLE_EQ(solveMutThreaded(M, 4).Cost, First);
}

TEST(EdgeCases, NewickHandlesUnusualNames) {
  PhyloTree T;
  T.addInternal(T.addLeaf(0), T.addLeaf(1), 1.0);
  T.setNames({"Homo_sapiens.X1", "chimp-2b"});
  auto Back = parseNewick(toNewick(T));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->speciesName(0), "Homo_sapiens.X1");
  EXPECT_EQ(Back->speciesName(1), "chimp-2b");
}

TEST(EdgeCases, PipelineLargeClusteredInstance) {
  // 60 species: far beyond exhaustive search, trivial for the pipeline
  // on clustered data.
  DistanceMatrix M = plantedClusterMetric(60, 4);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_EQ(R.Tree.numLeaves(), 60);
  EXPECT_TRUE(R.Tree.isWellFormed());
  EXPECT_TRUE(R.Tree.hasMonotoneHeights());
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

TEST(EdgeCases, AllDistancesEqualGivesDegenerateButValidTrees) {
  DistanceMatrix M(7);
  for (int I = 0; I < 7; ++I)
    for (int J = I + 1; J < 7; ++J)
      M.set(I, J, 4.0);
  MutResult R = solveMutSequential(M);
  // Every internal node sits at height 2; weight = 2 * (#internal + 1).
  EXPECT_DOUBLE_EQ(R.Cost, 2.0 * 7);
  EXPECT_TRUE(R.Tree.inducedMatrix().approxEquals(M, 1e-12));
}

TEST(EdgeCases, UpperBoundOptionTightensSearch) {
  DistanceMatrix M = uniformRandomMetric(10, 3);
  MutResult Plain = solveMutSequential(M);
  // Seeding with the known optimum must not change the answer.
  BnbOptions Options;
  Options.InitialUpperBound = Plain.Cost + 1e-9;
  MutResult Seeded = solveMutSequential(M, Options);
  EXPECT_NEAR(Seeded.Cost, Plain.Cost, 1e-9);
  EXPECT_LE(Seeded.Stats.Branched, Plain.Stats.Branched);
}
