//===- tests/service_test.cpp - Tree-construction service tests -----------===//
//
// Covers the `mutkd` subsystem bottom-up: matrix fingerprints, the
// bounded job queue, the sharded LRU cache, the wire-protocol codecs,
// the loopback TreeService (concurrency, determinism, caching,
// deadlines, shutdown) and the socket transport end to end.
//
//===----------------------------------------------------------------------===//

#include "compact/CompactSetPipeline.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "service/Client.h"
#include "service/JobQueue.h"
#include "service/ResultCache.h"
#include "service/Server.h"
#include "service/Service.h"
#include "service/ServiceStats.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <limits>
#include <numeric>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mutk;

namespace {

/// A metric whose distances all lie in [99, 100]: the triangle
/// inequality holds trivially, and the only compact sets are forced
/// minimum pairs, so the top condensed block stays large and exact B&B
/// on it prunes poorly — a reliable way to keep a worker busy for a
/// bounded-but-nontrivial number of branched nodes.
DistanceMatrix narrowBandMatrix(int N, std::uint64_t Seed) {
  DistanceMatrix M(N);
  std::uint64_t State = Seed * 0x9e3779b97f4a7c15ull + 1;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      double Unit = static_cast<double>(State >> 11) /
                    static_cast<double>(1ull << 53);
      M.set(I, J, 99.0 + Unit);
    }
  return M;
}

/// The knobs a default BuildRequest maps to on the pipeline side.
PipelineOptions defaultPipelineOptions() {
  PipelineOptions Options;
  Options.Mode = CondenseMode::Maximum;
  Options.MaxExactBlockSize = 16;
  return Options;
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix fingerprints
//===----------------------------------------------------------------------===//

TEST(Fingerprint, InvariantUnderRelabeling) {
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    std::uint64_t Want = fingerprint(M);
    std::vector<std::uint8_t> WantBytes = canonicalForm(M).Bytes;
    std::vector<int> Perm(12);
    std::iota(Perm.begin(), Perm.end(), 0);
    // A deterministic batch of permutations: reversals and rotations
    // compose into fairly arbitrary relabelings across iterations.
    for (int Round = 0; Round < 6; ++Round) {
      if (Round % 2 == 0)
        std::reverse(Perm.begin() + Round / 2, Perm.end());
      else
        std::rotate(Perm.begin(), Perm.begin() + 1 + Round / 2, Perm.end());
      DistanceMatrix P = M.permuted(Perm);
      EXPECT_EQ(Want, fingerprint(P)) << "seed " << Seed << " round "
                                      << Round;
      EXPECT_EQ(WantBytes, canonicalForm(P).Bytes);
    }
  }
}

TEST(Fingerprint, NamesDoNotMatter) {
  DistanceMatrix M = uniformRandomMetric(8, 9);
  DistanceMatrix Renamed = M;
  for (int I = 0; I < 8; ++I)
    Renamed.setName(I, "species_" + std::to_string(100 - I));
  EXPECT_EQ(fingerprint(M), fingerprint(Renamed));
}

TEST(Fingerprint, DistinguishesMatrices) {
  DistanceMatrix A = uniformRandomMetric(10, 1);
  DistanceMatrix B = uniformRandomMetric(10, 2);
  EXPECT_NE(fingerprint(A), fingerprint(B));

  DistanceMatrix C = A;
  C.set(2, 7, A.at(2, 7) + 0.5);
  EXPECT_NE(fingerprint(A), fingerprint(C));
}

TEST(Fingerprint, TinySizes) {
  EXPECT_NE(fingerprint(DistanceMatrix(0)), fingerprint(DistanceMatrix(1)));
  CanonicalForm Form = canonicalForm(DistanceMatrix(1));
  EXPECT_EQ(Form.Perm, std::vector<int>{0});
}

TEST(Fingerprint, PermutationMapsToCanonicalOrder) {
  DistanceMatrix M = uniformRandomMetric(9, 33);
  CanonicalForm Form = canonicalForm(M);
  ASSERT_EQ(static_cast<int>(Form.Perm.size()), 9);
  // Perm maps canonical index -> original index, so permuting M by it
  // must reproduce the canonical bytes with an identity permutation.
  DistanceMatrix Canon = M.permuted(Form.Perm);
  CanonicalForm Again = canonicalForm(Canon);
  EXPECT_EQ(Form.Key, Again.Key);
  EXPECT_EQ(Form.Bytes, Again.Bytes);
}

//===----------------------------------------------------------------------===//
// Bounded job queue
//===----------------------------------------------------------------------===//

TEST(BoundedQueue, FifoAndDrainAfterClose) {
  BoundedQueue<int> Q(4);
  EXPECT_TRUE(Q.push(1));
  EXPECT_TRUE(Q.push(2));
  EXPECT_TRUE(Q.push(3));
  EXPECT_EQ(Q.depth(), 3u);
  Q.close();
  EXPECT_FALSE(Q.push(4));
  // Consumers still see everything accepted before the close.
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.pop(), std::optional<int>(3));
  EXPECT_EQ(Q.pop(), std::nullopt);
}

TEST(BoundedQueue, TryPushShedsWhenFull) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3));
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_TRUE(Q.tryPush(3));
}

TEST(BoundedQueue, FailedPushLeavesItemIntact) {
  BoundedQueue<std::string> Q(1);
  Q.close();
  std::string Item = "still here";
  EXPECT_FALSE(Q.push(std::move(Item)));
  EXPECT_EQ(Item, "still here");
  std::string Other = "me too";
  EXPECT_FALSE(Q.tryPush(std::move(Other)));
  EXPECT_EQ(Other, "me too");
}

TEST(BoundedQueue, BlockingPushWaitsForConsumer) {
  BoundedQueue<int> Q(1);
  EXPECT_TRUE(Q.push(1));
  std::thread Consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(Q.pop(), std::optional<int>(1));
  });
  EXPECT_TRUE(Q.push(2)); // blocks until the consumer frees a slot
  Consumer.join();
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
}

TEST(BoundedQueue, DrainReturnsPending) {
  BoundedQueue<int> Q(8);
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(Q.push(std::move(I)));
  std::vector<int> Pending = Q.drain();
  EXPECT_EQ(Pending, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(Q.depth(), 0u);
}

//===----------------------------------------------------------------------===//
// Sharded LRU cache
//===----------------------------------------------------------------------===//

namespace {

CachedSolution solutionWithCost(double Cost,
                                std::vector<std::uint8_t> Bytes) {
  CachedSolution S;
  S.Cost = Cost;
  S.Bytes = std::move(Bytes);
  return S;
}

} // namespace

TEST(ShardedLruCache, StoreAndLookup) {
  ShardedLruCache Cache(16, 4);
  Cache.store(7, solutionWithCost(1.5, {1, 2, 3}));
  auto Hit = Cache.lookup(7, {1, 2, 3});
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(Hit->Cost, 1.5);
  EXPECT_FALSE(Cache.lookup(8, {1, 2, 3}).has_value());
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(ShardedLruCache, HashCollisionIsAMissNotAWrongTree) {
  ShardedLruCache Cache(16, 4);
  Cache.store(7, solutionWithCost(1.5, {1, 2, 3}));
  // Same key, different canonical bytes: must refuse the entry.
  EXPECT_FALSE(Cache.lookup(7, {9, 9, 9}).has_value());
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache Cache(2, 1); // single shard, two entries
  Cache.store(1, solutionWithCost(1, {1}));
  Cache.store(2, solutionWithCost(2, {2}));
  ASSERT_TRUE(Cache.lookup(1, {1}).has_value()); // 1 now most recent
  Cache.store(3, solutionWithCost(3, {3}));      // evicts 2
  EXPECT_TRUE(Cache.lookup(1, {1}).has_value());
  EXPECT_FALSE(Cache.lookup(2, {2}).has_value());
  EXPECT_TRUE(Cache.lookup(3, {3}).has_value());
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(ShardedLruCache, ClearEmpties) {
  ShardedLruCache Cache(16, 4);
  Cache.store(1, solutionWithCost(1, {1}));
  Cache.store(2, solutionWithCost(2, {2}));
  EXPECT_EQ(Cache.size(), 2u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.lookup(1, {1}).has_value());
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

namespace {

BuildRequest sampleBuildRequest() {
  BuildRequest R;
  R.Matrix = uniformRandomMetric(6, 11);
  R.Matrix.setName(0, "needs escaping?");
  R.Mode = CondenseMode::Average;
  R.ThreeThree = ThreeThreeMode::AllInsertions;
  R.MaxExactBlockSize = 9;
  R.Polish = true;
  R.NodeBudget = 123456789;
  R.DeadlineMillis = 2500;
  R.UseCache = false;
  return R;
}

} // namespace

TEST(Protocol, BuildRequestRoundTrip) {
  Request Original = makeBuildRequest(sampleBuildRequest());
  std::vector<std::uint8_t> Bytes = encodeRequest(Original);
  std::optional<Request> Back = decodeRequest(Bytes);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->V, Verb::Build);
  const BuildRequest &B = Back->Build;
  EXPECT_TRUE(Original.Build.Matrix.approxEquals(B.Matrix, 0.0));
  EXPECT_EQ(B.Matrix.name(0), "needs escaping?");
  EXPECT_EQ(B.Mode, CondenseMode::Average);
  EXPECT_EQ(B.ThreeThree, ThreeThreeMode::AllInsertions);
  EXPECT_EQ(B.MaxExactBlockSize, 9);
  EXPECT_TRUE(B.Polish);
  EXPECT_EQ(B.NodeBudget, 123456789u);
  EXPECT_EQ(B.DeadlineMillis, 2500u);
  EXPECT_FALSE(B.UseCache);
}

TEST(Protocol, GeneratorRequestRoundTrip) {
  BuildRequest G;
  G.Generator = GeneratorKind::Clustered;
  G.GenSpecies = 40;
  G.GenSeed = 77;
  std::optional<Request> Back = decodeRequest(encodeRequest(makeBuildRequest(G)));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Build.Generator, GeneratorKind::Clustered);
  EXPECT_EQ(Back->Build.GenSpecies, 40);
  EXPECT_EQ(Back->Build.GenSeed, 77u);
  EXPECT_EQ(Back->Build.Matrix.size(), 0);
}

TEST(Protocol, BuildResponseRoundTrip) {
  Response R;
  R.V = Verb::Build;
  R.Build.Newick = "((a:1,b:1):1,c:2);";
  R.Build.Cost = 42.25;
  R.Build.Exact = true;
  R.Build.CacheHit = true;
  R.Build.BlockCacheHits = 3;
  R.Build.Branched = 999;
  R.Build.QueueMillis = 0.5;
  R.Build.SolveMillis = 7.25;
  BlockSummary S;
  S.NumBlocks = 4;
  S.Cost = 10.5;
  S.Exact = false;
  S.FromCache = true;
  R.Build.Blocks = {S, S};
  std::optional<Response> Back = decodeResponse(encodeResponse(R));
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->ok());
  EXPECT_EQ(Back->Build.Newick, R.Build.Newick);
  EXPECT_DOUBLE_EQ(Back->Build.Cost, 42.25);
  EXPECT_TRUE(Back->Build.Exact);
  EXPECT_TRUE(Back->Build.CacheHit);
  EXPECT_EQ(Back->Build.BlockCacheHits, 3u);
  EXPECT_EQ(Back->Build.Branched, 999u);
  ASSERT_EQ(Back->Build.Blocks.size(), 2u);
  EXPECT_EQ(Back->Build.Blocks[0].NumBlocks, 4);
  EXPECT_FALSE(Back->Build.Blocks[0].Exact);
  EXPECT_TRUE(Back->Build.Blocks[0].FromCache);
}

TEST(Protocol, ErrorResponseRoundTrip) {
  Response R = makeErrorResponse(Verb::Build, ServiceError::DeadlineExpired,
                                 "too slow");
  std::optional<Response> Back = decodeResponse(encodeResponse(R));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Error, ServiceError::DeadlineExpired);
  EXPECT_EQ(Back->Message, "too slow");
  EXPECT_FALSE(Back->ok());
}

TEST(Protocol, StatsRoundTrip) {
  Response R;
  R.V = Verb::Stats;
  R.Stats.Accepted = 10;
  R.Stats.WholeHits = 4;
  R.Stats.QueueDepth = 2;
  R.Stats.P95Millis = 12.5;
  std::optional<Response> Back = decodeResponse(encodeResponse(R));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Stats.Accepted, 10u);
  EXPECT_EQ(Back->Stats.WholeHits, 4u);
  EXPECT_EQ(Back->Stats.QueueDepth, 2u);
  EXPECT_DOUBLE_EQ(Back->Stats.P95Millis, 12.5);
}

TEST(Protocol, RejectsCorruptFrames) {
  EXPECT_FALSE(decodeRequest({}).has_value());
  EXPECT_FALSE(decodeRequest({99}).has_value());      // unknown verb
  EXPECT_FALSE(decodeResponse({}).has_value());
  EXPECT_FALSE(decodeResponse({0xff}).has_value());

  // Every strict prefix of a valid encoding must fail, and so must
  // trailing garbage — decoders consume exactly the payload.
  std::vector<std::uint8_t> Bytes =
      encodeRequest(makeBuildRequest(sampleBuildRequest()));
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<std::uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    EXPECT_FALSE(decodeRequest(Prefix).has_value()) << "prefix " << Len;
  }
  std::vector<std::uint8_t> Padded = Bytes;
  Padded.push_back(0);
  EXPECT_FALSE(decodeRequest(Padded).has_value());
}

TEST(Protocol, RejectsOversizedMatrixHeader) {
  // A forged species count beyond the protocol cap must be rejected
  // before any n^2 allocation happens.
  BuildRequest R;
  R.Matrix = DistanceMatrix(2);
  std::vector<std::uint8_t> Bytes = encodeRequest(makeBuildRequest(R));
  // Layout: verb u8, version u32, generator u8, then the i32 species
  // count of the inline matrix.
  std::size_t CountOffset = 1 + 4 + 1;
  std::uint32_t Huge = 1u << 30;
  for (int I = 0; I < 4; ++I)
    Bytes[CountOffset + I] = static_cast<std::uint8_t>(Huge >> (8 * I));
  EXPECT_FALSE(decodeRequest(Bytes).has_value());
}

TEST(Protocol, RejectsNegativeAndNanDistances) {
  // DistanceMatrix itself refuses such values (asserts in debug), so
  // forge them on the wire: overwrite the single f64 distance of a
  // 2-species request. It sits right before the 26 trailing bytes of
  // knob fields (mode u8, 3-3 u8, cap i32, polish u8, budget u64,
  // deadline u32, cache u8, incremental u8, priority u8, empty tenant
  // u32 length).
  DistanceMatrix M(2);
  M.set(0, 1, 3.0);
  BuildRequest R;
  R.Matrix = M;
  std::vector<std::uint8_t> Good = encodeRequest(makeBuildRequest(R));
  ASSERT_TRUE(decodeRequest(Good).has_value());

  auto withDistance = [&](double Value) {
    std::vector<std::uint8_t> Forged = Good;
    std::uint64_t Bits = 0;
    std::memcpy(&Bits, &Value, sizeof(Bits));
    std::size_t Offset = Forged.size() - 26 - 8;
    for (int I = 0; I < 8; ++I)
      Forged[Offset + static_cast<std::size_t>(I)] =
          static_cast<std::uint8_t>(Bits >> (8 * I));
    return Forged;
  };
  ASSERT_TRUE(decodeRequest(withDistance(3.0)).has_value()); // offset sane
  EXPECT_FALSE(decodeRequest(withDistance(-1.0)).has_value());
  EXPECT_FALSE(
      decodeRequest(withDistance(std::numeric_limits<double>::quiet_NaN()))
          .has_value());
}

//===----------------------------------------------------------------------===//
// Latency histogram
//===----------------------------------------------------------------------===//

TEST(LatencyHistogram, PercentilesAreOrderedAndInRange) {
  LatencyHistogram H;
  EXPECT_DOUBLE_EQ(H.snapshotMillis().P50, 0.0);
  for (int I = 0; I < 95; ++I)
    H.record(1.0);
  for (int I = 0; I < 5; ++I)
    H.record(200.0);
  obs::HistogramSnapshot S = H.snapshotMillis();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_GT(S.P50, 0.2);
  EXPECT_LT(S.P50, 3.0); // power-of-two buckets: within ~2x of 1ms
  EXPECT_LE(S.P50, S.P95);
  EXPECT_GT(S.P99, 100.0);
  EXPECT_LT(S.P99, 500.0);
  EXPECT_GT(S.Max, 100.0);
}

//===----------------------------------------------------------------------===//
// Loopback service
//===----------------------------------------------------------------------===//

TEST(TreeService, ConcurrentClientsMatchDirectPipeline) {
  // Direct single-threaded reference results for three matrices.
  std::vector<DistanceMatrix> Matrices;
  std::vector<std::string> WantNewick;
  std::vector<double> WantCost;
  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10 + 2 * static_cast<int>(Seed),
                                           Seed);
    PipelineResult Direct = buildCompactSetTree(M, defaultPipelineOptions());
    Matrices.push_back(std::move(M));
    WantNewick.push_back(toNewick(Direct.Tree));
    WantCost.push_back(Direct.Cost);
  }

  ServiceOptions Options;
  Options.NumWorkers = 4;
  TreeService Service(Options);

  // 4 client threads, each submitting every matrix several times in a
  // different order: exercises queue, workers and cache concurrently.
  constexpr int NumClients = 4;
  constexpr int Rounds = 3;
  std::vector<std::thread> Clients;
  std::vector<std::string> Failures[NumClients];
  for (int C = 0; C < NumClients; ++C) {
    Clients.emplace_back([&, C] {
      for (int Round = 0; Round < Rounds; ++Round) {
        for (std::size_t K = 0; K < Matrices.size(); ++K) {
          std::size_t Pick = (K + static_cast<std::size_t>(C)) %
                             Matrices.size();
          BuildRequest R;
          R.Matrix = Matrices[Pick];
          BuildResponse Resp = Service.submit(std::move(R));
          if (!Resp.ok())
            Failures[C].push_back(Resp.Message);
          else if (Resp.Newick != WantNewick[Pick] ||
                   std::abs(Resp.Cost - WantCost[Pick]) > 1e-9)
            Failures[C].push_back("mismatch on matrix " +
                                  std::to_string(Pick));
        }
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  for (int C = 0; C < NumClients; ++C)
    EXPECT_TRUE(Failures[C].empty())
        << "client " << C << ": " << Failures[C].front();

  StatsSnapshot S = Service.stats();
  EXPECT_EQ(S.Accepted, static_cast<std::uint64_t>(NumClients) * Rounds * 3);
  EXPECT_EQ(S.Completed, S.Accepted);
  EXPECT_EQ(S.Failed, 0u);
  // 12 submissions per matrix and only the first can miss everywhere;
  // some overlap is guaranteed to hit one of the two cache layers.
  EXPECT_GT(S.WholeHits + S.BlockHits, 0u);
}

TEST(TreeService, RelabeledDuplicateHitsWholeCache) {
  DistanceMatrix M = uniformRandomMetric(12, 42);
  ServiceOptions Options;
  Options.NumWorkers = 2;
  TreeService Service(Options);

  BuildRequest First;
  First.Matrix = M;
  BuildResponse R1 = Service.submit(std::move(First));
  ASSERT_TRUE(R1.ok()) << R1.Message;
  ASSERT_TRUE(R1.Exact); // only exact results are cached
  EXPECT_FALSE(R1.CacheHit);

  // The same metric under a different labeling: must be answered from
  // the whole-matrix cache without running a solver.
  std::vector<int> Perm(12);
  std::iota(Perm.begin(), Perm.end(), 0);
  std::reverse(Perm.begin(), Perm.end());
  BuildRequest Second;
  Second.Matrix = M.permuted(Perm);
  for (int I = 0; I < 12; ++I)
    Second.Matrix.setName(I, "relabeled_" + std::to_string(I));
  BuildResponse R2 = Service.submit(std::move(Second));
  ASSERT_TRUE(R2.ok()) << R2.Message;
  EXPECT_TRUE(R2.CacheHit);
  EXPECT_NEAR(R2.Cost, R1.Cost, 1e-9);
  EXPECT_NE(R2.Newick.find("relabeled_3"), std::string::npos);

  std::optional<PhyloTree> Replayed = parseNewick(R2.Newick);
  ASSERT_TRUE(Replayed.has_value());
  EXPECT_EQ(Replayed->numLeaves(), 12);

  StatsSnapshot S = Service.stats();
  EXPECT_EQ(S.WholeHits, 1u);
  EXPECT_EQ(S.WholeMisses, 1u);
}

TEST(TreeService, CacheOptOutSolvesFresh) {
  DistanceMatrix M = uniformRandomMetric(10, 4);
  TreeService Service;
  BuildRequest First;
  First.Matrix = M;
  BuildResponse R1 = Service.submit(std::move(First));
  ASSERT_TRUE(R1.ok());
  BuildRequest Second;
  Second.Matrix = M;
  Second.UseCache = false;
  BuildResponse R2 = Service.submit(std::move(Second));
  ASSERT_TRUE(R2.ok());
  EXPECT_FALSE(R2.CacheHit);
  EXPECT_EQ(R2.BlockCacheHits, 0u);
  EXPECT_EQ(R2.Newick, R1.Newick); // still deterministic
}

TEST(TreeService, KnobsArePartOfTheCacheKey) {
  DistanceMatrix M = uniformRandomMetric(12, 8);
  TreeService Service;
  BuildRequest MaxMode;
  MaxMode.Matrix = M;
  BuildResponse R1 = Service.submit(std::move(MaxMode));
  ASSERT_TRUE(R1.ok());

  BuildRequest AvgMode;
  AvgMode.Matrix = M;
  AvgMode.Mode = CondenseMode::Average;
  BuildResponse R2 = Service.submit(std::move(AvgMode));
  ASSERT_TRUE(R2.ok());
  // A different condense mode must not be answered from the Maximum
  // entry (costs may or may not differ; the hit flag must not lie).
  EXPECT_FALSE(R2.CacheHit);
}

TEST(TreeService, RejectsBadAndOversizedRequests) {
  ServiceOptions Options;
  Options.MaxSpecies = 32;
  TreeService Service(Options);

  BuildRequest Empty; // neither matrix nor generator
  EXPECT_EQ(Service.submit(std::move(Empty)).Error, ServiceError::BadMatrix);

  BuildRequest TooBig;
  TooBig.Generator = GeneratorKind::Uniform;
  TooBig.GenSpecies = 100;
  EXPECT_EQ(Service.submit(std::move(TooBig)).Error,
            ServiceError::BadRequest);

  BuildRequest Inline;
  Inline.Matrix = uniformRandomMetric(33, 1);
  EXPECT_EQ(Service.submit(std::move(Inline)).Error, ServiceError::TooLarge);

  BuildRequest Single;
  Single.Matrix = DistanceMatrix(1);
  BuildResponse R = Service.submit(std::move(Single));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.Cost, 0.0);
}

TEST(TreeService, DeadlineExpiredIsAStructuredError) {
  // One worker, and a blocker in front that branches a large (but
  // budget-bounded) number of B&B nodes: by the time the worker reaches
  // the second job its 1ms deadline has long expired, which must yield
  // a structured error, not a stall or a silent heuristic answer.
  ServiceOptions Options;
  Options.NumWorkers = 1;
  TreeService Service(Options);

  BuildRequest Blocker;
  Blocker.Matrix = narrowBandMatrix(20, 3);
  Blocker.MaxExactBlockSize = 20;
  Blocker.NodeBudget = 400'000;
  Blocker.UseCache = false;
  std::future<BuildResponse> BlockerDone =
      Service.submitAsync(std::move(Blocker));

  // The queue is deadline-ordered, so a short-deadline job submitted
  // while the blocker is still *queued* would be popped first and solved
  // in time. Wait until the worker has dequeued the blocker — only then
  // does the doomed request actually sit behind a busy worker.
  while (Service.stats().QueueDepth > 0)
    std::this_thread::yield();

  BuildRequest Doomed;
  Doomed.Matrix = uniformRandomMetric(8, 1);
  Doomed.DeadlineMillis = 1;
  std::future<BuildResponse> DoomedDone =
      Service.submitAsync(std::move(Doomed));

  BuildResponse BlockerResp = BlockerDone.get();
  EXPECT_TRUE(BlockerResp.ok()) << BlockerResp.Message;
  BuildResponse DoomedResp = DoomedDone.get();
  EXPECT_EQ(DoomedResp.Error, ServiceError::DeadlineExpired);
  EXPECT_FALSE(DoomedResp.Message.empty());
  EXPECT_GE(Service.stats().DeadlineExpired, 1u);
}

TEST(TreeService, DeadlineCapsNodeBudget) {
  // A request with both a node budget and a deadline gets the tighter
  // of the two: the solver must never branch past its explicit budget.
  TreeService Service;
  BuildRequest R;
  R.Matrix = narrowBandMatrix(14, 9);
  R.MaxExactBlockSize = 14;
  R.NodeBudget = 1000;
  R.DeadlineMillis = 60'000;
  BuildResponse Resp = Service.submit(std::move(R));
  ASSERT_TRUE(Resp.ok()) << Resp.Message;
  EXPECT_LE(Resp.Branched, 1000u + 14);
}

TEST(TreeService, CleanShutdownWithJobsInFlight) {
  ServiceOptions Options;
  Options.NumWorkers = 1;
  TreeService Service(Options);

  std::vector<std::future<BuildResponse>> Futures;
  for (int I = 0; I < 6; ++I) {
    BuildRequest R;
    R.Matrix = narrowBandMatrix(14, static_cast<std::uint64_t>(I));
    R.MaxExactBlockSize = 14;
    R.NodeBudget = 50'000;
    Futures.push_back(Service.submitAsync(std::move(R)));
  }
  Service.stop();

  // Every admitted job must be answered: solved if a worker got to it,
  // failed with ShuttingDown otherwise — never a broken promise.
  int Solved = 0, Failed = 0;
  for (std::future<BuildResponse> &F : Futures) {
    BuildResponse R = F.get();
    if (R.ok())
      ++Solved;
    else {
      EXPECT_EQ(R.Error, ServiceError::ShuttingDown);
      ++Failed;
    }
  }
  EXPECT_EQ(Solved + Failed, 6);

  // Post-shutdown submissions are refused, not queued forever.
  BuildRequest Late;
  Late.Matrix = uniformRandomMetric(6, 1);
  EXPECT_EQ(Service.submit(std::move(Late)).Error,
            ServiceError::ShuttingDown);
  Service.stop(); // idempotent
}

TEST(TreeService, HandleDispatchesProtocolVerbs) {
  TreeService Service;
  Request Ping;
  Ping.V = Verb::Ping;
  EXPECT_TRUE(Service.handle(Ping).ok());

  Request Build = makeBuildRequest([] {
    BuildRequest R;
    R.Generator = GeneratorKind::Ultrametric;
    R.GenSpecies = 9;
    R.GenSeed = 5;
    return R;
  }());
  Response BuildResp = Service.handle(Build);
  ASSERT_TRUE(BuildResp.ok()) << BuildResp.Message;
  std::optional<PhyloTree> Tree = parseNewick(BuildResp.Build.Newick);
  ASSERT_TRUE(Tree.has_value());
  EXPECT_EQ(Tree->numLeaves(), 9);

  Request Stats;
  Stats.V = Verb::Stats;
  Response StatsResp = Service.handle(Stats);
  ASSERT_TRUE(StatsResp.ok());
  EXPECT_EQ(StatsResp.Stats.Accepted, 1u);
}

//===----------------------------------------------------------------------===//
// Socket transport
//===----------------------------------------------------------------------===//

TEST(SocketServer, UnixSocketEndToEnd) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  TreeService Service(Options);
  SocketServer Server(Service);
  std::string Path = testing::TempDir() + "mutk_service_test.sock";
  std::string Error;
  ASSERT_TRUE(Server.listenUnix(Path, &Error)) << Error;
  Server.start();

  ServiceClient Client;
  ASSERT_TRUE(Client.connectUnix(Path, &Error)) << Error;
  EXPECT_TRUE(Client.ping(&Error)) << Error;

  BuildRequest R;
  R.Matrix = uniformRandomMetric(10, 6);
  std::optional<BuildResponse> Resp = Client.build(R, &Error);
  ASSERT_TRUE(Resp.has_value()) << Error;
  ASSERT_TRUE(Resp->ok()) << Resp->Message;
  PipelineResult Direct =
      buildCompactSetTree(R.Matrix, defaultPipelineOptions());
  EXPECT_EQ(Resp->Newick, toNewick(Direct.Tree));
  EXPECT_NEAR(Resp->Cost, Direct.Cost, 1e-9);

  std::optional<StatsSnapshot> S = Client.stats(&Error);
  ASSERT_TRUE(S.has_value()) << Error;
  EXPECT_GE(S->Accepted, 1u);

  EXPECT_TRUE(Client.shutdownServer(&Error)) << Error;
  Server.waitForShutdown();
  Server.stop();
  Service.stop();
}

// Regression: a failed Build echoes the Build verb with no body; the
// client must surface the outer error code instead of returning a
// default-constructed (silently successful) BuildResponse.
TEST(SocketServer, BuildErrorsCrossTheWire) {
  TreeService Service;
  SocketServer Server(Service);
  std::string Path = testing::TempDir() + "mutk_service_err.sock";
  std::string Error;
  ASSERT_TRUE(Server.listenUnix(Path, &Error)) << Error;
  Server.start();

  ServiceClient Client;
  ASSERT_TRUE(Client.connectUnix(Path, &Error)) << Error;

  BuildRequest R;
  R.Generator = GeneratorKind::Uniform;
  R.GenSpecies = 1 << 20;
  std::optional<BuildResponse> Resp = Client.build(R, &Error);
  ASSERT_TRUE(Resp.has_value()) << Error;
  EXPECT_EQ(Resp->Error, ServiceError::BadRequest);
  EXPECT_FALSE(Resp->Message.empty());

  Server.stop();
  Service.stop();
}

TEST(SocketServer, TcpEphemeralPortEndToEnd) {
  TreeService Service;
  SocketServer Server(Service);
  std::string Error;
  ASSERT_TRUE(Server.listenTcp("127.0.0.1", 0, &Error)) << Error;
  ASSERT_GT(Server.port(), 0);
  Server.start();

  ServiceClient Client;
  ASSERT_TRUE(Client.connectTcp("127.0.0.1", Server.port(), &Error)) << Error;
  EXPECT_TRUE(Client.ping(&Error)) << Error;
  BuildRequest R;
  R.Generator = GeneratorKind::Uniform;
  R.GenSpecies = 8;
  R.GenSeed = 2;
  std::optional<BuildResponse> Resp = Client.build(R, &Error);
  ASSERT_TRUE(Resp.has_value()) << Error;
  EXPECT_TRUE(Resp->ok()) << Resp->Message;
  Client.disconnect();
  Server.stop();
  Service.stop();
}

TEST(SocketServer, AnswersGarbageWithBadFrame) {
  TreeService Service;
  SocketServer Server(Service);
  std::string Path = testing::TempDir() + "mutk_badframe_test.sock";
  std::string Error;
  ASSERT_TRUE(Server.listenUnix(Path, &Error)) << Error;
  Server.start();

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  // A well-framed payload that does not decode as any request.
  ASSERT_TRUE(writeFrame(Fd, {0xde, 0xad, 0xbe, 0xef}));
  std::vector<std::uint8_t> Payload;
  ASSERT_TRUE(readFrame(Fd, Payload));
  std::optional<Response> Resp = decodeResponse(Payload);
  ASSERT_TRUE(Resp.has_value());
  EXPECT_EQ(Resp->Error, ServiceError::BadFrame);
  ::close(Fd);

  Server.stop();
  Service.stop();
}

TEST(SocketServer, StopWithConnectedClientDoesNotHang) {
  TreeService Service;
  SocketServer Server(Service);
  std::string Path = testing::TempDir() + "mutk_stop_test.sock";
  ASSERT_TRUE(Server.listenUnix(Path));
  Server.start();
  ServiceClient Client;
  ASSERT_TRUE(Client.connectUnix(Path));
  ASSERT_TRUE(Client.ping());
  // Client stays connected and idle; stop() must shut the connection
  // down rather than wait for the client to hang up.
  Server.stop();
  Service.stop();
  EXPECT_FALSE(Client.ping());
}

TEST(ClientBackoff, DoublesAndSaturatesAtCap) {
  EXPECT_EQ(nextBackoffMillis(100, 5000), 200);
  EXPECT_EQ(nextBackoffMillis(200, 5000), 400);
  EXPECT_EQ(nextBackoffMillis(2499, 5000), 4998);
  // At or past half the cap, doubling would overshoot: saturate.
  EXPECT_EQ(nextBackoffMillis(2500, 5000), 5000);
  EXPECT_EQ(nextBackoffMillis(5000, 5000), 5000);
  EXPECT_EQ(nextBackoffMillis(9999, 5000), 5000);
}

TEST(ClientBackoff, NeverOverflows) {
  // A huge current delay (e.g. user-supplied --backoff-ms near LONG_MAX)
  // must clamp to the cap, not wrap to a negative sleep. The naive
  // `min(Current * 2, Cap)` is undefined behavior here.
  constexpr long Cap = 5000;
  EXPECT_EQ(nextBackoffMillis(std::numeric_limits<long>::max(), Cap), Cap);
  EXPECT_EQ(nextBackoffMillis(std::numeric_limits<long>::max() / 2, Cap), Cap);
  // Degenerate inputs stay positive.
  EXPECT_EQ(nextBackoffMillis(0, 5000), 1);
  EXPECT_GT(nextBackoffMillis(1, 5000), 0);
}
