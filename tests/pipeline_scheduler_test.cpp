//===- tests/pipeline_scheduler_test.cpp - Parallel block scheduler -------===//
//
// The dependency-aware block scheduler (compact/BlockScheduler.h) and
// its integration into the compact-set pipeline: thread-budget
// resolution, determinism of the merged tree across every concurrency
// level, single-flight of identical blocks, eager removal of stale
// checkpoints, and a race-hunting stress for the tsan preset (two
// concurrent pipelines sharing one cache and one checkpoint directory).
//
//===----------------------------------------------------------------------===//

#include "compact/BlockScheduler.h"
#include "compact/CompactSetPipeline.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "persist/Checkpoint.h"
#include "persist/Files.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

using namespace mutk;

namespace {

/// An equilateral matrix has no compact sets: the hierarchy degenerates
/// to a single block of all species.
DistanceMatrix equilateral(int N, double D = 5.0) {
  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J, D);
  return M;
}

/// Thread-safe in-memory block cache for hook tests.
struct MemoryBlockCache {
  BlockCacheHooks hooks() {
    BlockCacheHooks H;
    H.Lookup = [this](std::uint64_t Key, const std::vector<std::uint8_t> &B)
        -> std::optional<BlockCacheEntry> {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Entries.find(Key);
      if (It == Entries.end() || It->second.first != B) {
        ++Misses;
        return std::nullopt;
      }
      ++Hits;
      return It->second.second;
    };
    H.Store = [this](std::uint64_t Key, const std::vector<std::uint8_t> &B,
                     const BlockCacheEntry &E) {
      std::lock_guard<std::mutex> Lock(Mu);
      Entries[Key] = {B, E};
    };
    return H;
  }

  std::mutex Mu;
  std::map<std::uint64_t, std::pair<std::vector<std::uint8_t>,
                                    BlockCacheEntry>>
      Entries;
  int Hits = 0;
  int Misses = 0;
};

} // namespace

TEST(ThreadBudgetSplit, OneMeansSequentialWalk) {
  ThreadBudget B = splitThreadBudget(1, 0, false, 10, 16);
  EXPECT_EQ(B.Blocks, 1);
  EXPECT_EQ(B.PerBlock, 1);
}

TEST(ThreadBudgetSplit, ZeroAutoTunesFromHardwareCappedAtBlocks) {
  EXPECT_EQ(splitThreadBudget(0, 0, false, 100, 8).Blocks, 8);
  EXPECT_EQ(splitThreadBudget(0, 0, false, 3, 8).Blocks, 3);
  // Unknown hardware (0) degrades to sequential, never to zero threads.
  EXPECT_EQ(splitThreadBudget(0, 0, false, 100, 0).Blocks, 1);
}

TEST(ThreadBudgetSplit, ExplicitRequestCappedAtSolvableBlocks) {
  EXPECT_EQ(splitThreadBudget(16, 0, false, 5, 8).Blocks, 5);
  EXPECT_EQ(splitThreadBudget(2, 0, false, 5, 8).Blocks, 2);
  // A hierarchy with no internal nodes still yields a sane budget.
  EXPECT_EQ(splitThreadBudget(8, 0, false, 0, 8).Blocks, 1);
}

TEST(ThreadBudgetSplit, PerBlockWorkersOnlyForThreadedSolver) {
  // Non-threaded solvers always get one worker per block.
  EXPECT_EQ(splitThreadBudget(4, 7, false, 10, 16).PerBlock, 1);
  // Threaded: explicit request wins; auto divides the hardware across
  // the concurrent blocks.
  EXPECT_EQ(splitThreadBudget(4, 3, true, 10, 16).PerBlock, 3);
  EXPECT_EQ(splitThreadBudget(4, 0, true, 10, 16).PerBlock, 4);
  EXPECT_EQ(splitThreadBudget(8, 0, true, 10, 4).PerBlock, 1);
}

TEST(Scheduler, MergedTreeIsIdenticalAcrossConcurrencyLevels) {
  // The tentpole determinism claim: with the (deterministic) sequential
  // per-block solver, the scheduler produces a byte-identical canonical
  // tree for every K — including the classic recursive walk (K = 1).
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(26, Seed);

    PipelineOptions Walk;
    Walk.BlockConcurrency = 1;
    PipelineResult Reference = buildCompactSetTree(M, Walk);
    EXPECT_EQ(Reference.BlockConcurrency, 1);

    for (int K : {2, 8}) {
      PipelineOptions Par;
      Par.BlockConcurrency = K;
      PipelineResult R = buildCompactSetTree(M, Par);
      EXPECT_GE(R.BlockConcurrency, 1);
      EXPECT_EQ(toNewick(R.Tree), toNewick(Reference.Tree))
          << "seed " << Seed << " K " << K;
      EXPECT_DOUBLE_EQ(R.Cost, Reference.Cost);
      EXPECT_EQ(R.HeightClamps, 0);
      // The per-block reports come out in the sequential walk's order
      // with identical accounting.
      ASSERT_EQ(R.Blocks.size(), Reference.Blocks.size());
      for (std::size_t I = 0; I < R.Blocks.size(); ++I) {
        EXPECT_EQ(R.Blocks[I].HierarchyNode,
                  Reference.Blocks[I].HierarchyNode);
        EXPECT_EQ(R.Blocks[I].NumBlocks, Reference.Blocks[I].NumBlocks);
        EXPECT_DOUBLE_EQ(R.Blocks[I].Cost, Reference.Blocks[I].Cost);
        EXPECT_EQ(R.Blocks[I].Branched, Reference.Blocks[I].Branched);
      }
      EXPECT_EQ(R.TotalStats.Branched, Reference.TotalStats.Branched);
    }
  }
}

TEST(Scheduler, AutoConcurrencyProducesTheSameTree) {
  DistanceMatrix M = plantedClusterMetric(20, 7);
  PipelineOptions Walk;
  PipelineResult Reference = buildCompactSetTree(M, Walk);
  PipelineOptions Auto;
  Auto.BlockConcurrency = 0; // resolve from hardware_concurrency
  PipelineResult R = buildCompactSetTree(M, Auto);
  EXPECT_EQ(toNewick(R.Tree), toNewick(Reference.Tree));
  EXPECT_GE(R.BlockConcurrency, 1);
}

TEST(Scheduler, ThreadedBlockSolverMatchesSequentialCost) {
  // The threaded B&B races co-optimal incumbents, so only the cost is
  // deterministic — same contract as parallel_test.
  for (std::uint64_t Seed = 0; Seed < 3; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(18, Seed);
    PipelineResult Reference = buildCompactSetTree(M);

    PipelineOptions Par;
    Par.Solver = BlockSolver::Threaded;
    Par.BlockConcurrency = 4;
    Par.ThreadsPerBlock = 2;
    PipelineResult R = buildCompactSetTree(M, Par);
    EXPECT_EQ(R.WorkersPerBlock, 2);
    EXPECT_NEAR(R.Cost, Reference.Cost, 1e-9) << "seed " << Seed;
    EXPECT_TRUE(R.Tree.isWellFormed());
    EXPECT_TRUE(R.Tree.hasMonotoneHeights());
    EXPECT_TRUE(R.Tree.dominatesMatrix(M));
  }
}

TEST(Scheduler, SolveExceptionPropagatesToCaller) {
  DistanceMatrix M = plantedClusterMetric(16, 3);
  BlockCacheHooks Hooks;
  Hooks.Lookup = [](std::uint64_t, const std::vector<std::uint8_t> &)
      -> std::optional<BlockCacheEntry> {
    throw std::runtime_error("cache backend down");
  };
  PipelineOptions Par;
  Par.BlockConcurrency = 4;
  Par.BlockCache = &Hooks;
  EXPECT_THROW(buildCompactSetTree(M, Par), std::runtime_error);
}

TEST(Scheduler, SharedCacheIsConsultedAndFilledUnderConcurrency) {
  DistanceMatrix M = plantedClusterMetric(24, 11);
  MemoryBlockCache Cache;
  BlockCacheHooks Hooks = Cache.hooks();

  PipelineOptions Par;
  Par.BlockConcurrency = 8;
  Par.BlockCache = &Hooks;
  PipelineResult Cold = buildCompactSetTree(M, Par);
  EXPECT_EQ(Cache.Hits, 0);
  EXPECT_FALSE(Cache.Entries.empty());

  PipelineResult Warm = buildCompactSetTree(M, Par);
  EXPECT_EQ(toNewick(Warm.Tree), toNewick(Cold.Tree));
  // Every block of the warm run replays from the cache.
  for (const BlockReport &B : Warm.Blocks)
    EXPECT_TRUE(B.FromCache);
}

TEST(Checkpoint, StaleCheckpointIsRemovedEagerlyOnKeyMismatch) {
  // A checkpoint whose MatrixKey does not match the block is useless;
  // it must be deleted at load time, not after a successful solve — a
  // block whose every attempt is truncated (tight budget here) would
  // otherwise reload the dead file forever.
  DistanceMatrix M = uniformRandomMetric(14, 0);

  std::atomic<int> DoneCalls{0};
  std::atomic<int> LoadCalls{0};
  BlockCheckpointHooks Hooks;
  Hooks.Load = [&](std::uint64_t) -> std::optional<SearchCheckpoint> {
    ++LoadCalls;
    SearchCheckpoint Stale;
    Stale.MatrixKey = 0xdeadbeefdeadbeefULL; // never a real fingerprint
    return Stale;
  };
  Hooks.Done = [&](std::uint64_t) { ++DoneCalls; };

  PipelineOptions Options;
  Options.Bnb.MaxBranchedNodes = 1; // the root block truncates
  Options.BlockCheckpoint = &Hooks;
  PipelineResult R = buildCompactSetTree(M, Options);

  int ExactBlocks = 0, TruncatedBlocks = 0;
  for (const BlockReport &B : R.Blocks)
    (B.Exact ? ExactBlocks : TruncatedBlocks) += 1;
  ASSERT_GT(TruncatedBlocks, 0) << "budget must truncate at least one block";
  EXPECT_EQ(LoadCalls.load(), static_cast<int>(R.Blocks.size()));
  // One eager removal per stale load, plus the regular removal after
  // each block that completed exactly. Pre-fix behavior was
  // `DoneCalls == ExactBlocks`: the truncated block's stale file
  // survived to be reloaded on every future attempt.
  EXPECT_EQ(DoneCalls.load(), LoadCalls.load() + ExactBlocks);
}

TEST(Checkpoint, CompletedSolveStillRemovesItsCheckpoint) {
  DistanceMatrix M = equilateral(8);
  std::atomic<int> DoneCalls{0};
  BlockCheckpointHooks Hooks;
  Hooks.Done = [&](std::uint64_t) { ++DoneCalls; };
  PipelineOptions Options;
  Options.BlockCheckpoint = &Hooks;
  PipelineResult R = buildCompactSetTree(M, Options);
  ASSERT_EQ(R.Blocks.size(), 1u);
  EXPECT_TRUE(R.Blocks[0].Exact);
  EXPECT_EQ(DoneCalls.load(), 1);
}

TEST(SchedulerStress, TwoPipelinesShareCacheAndCheckpointDir) {
  // Race hunt for the tsan preset: two concurrent pipelines, each with
  // its own internal block parallelism, share one cache and one
  // checkpoint directory keyed by fingerprint. Identical inputs mean
  // every block collides across the two runs — the single-flight layer
  // must serialize them per key with no torn checkpoint files and both
  // runs must still produce the reference tree.
  DistanceMatrix M = plantedClusterMetric(24, 19);
  PipelineResult Reference = buildCompactSetTree(M);

  std::string Dir = testing::TempDir() + "mutk_sched_stress_ckpt";
  persist::ensureDir(Dir);
  auto Path = [&](std::uint64_t Key) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "%016llx.ckpt",
                  static_cast<unsigned long long>(Key));
    return Dir + "/" + Name;
  };
  BlockCheckpointHooks Ckpt;
  Ckpt.SinkFor = [&](std::uint64_t Key) -> std::unique_ptr<CheckpointSink> {
    return std::make_unique<persist::FileCheckpointSink>(Path(Key));
  };
  Ckpt.Load = [&](std::uint64_t Key) {
    return persist::loadCheckpoint(Path(Key));
  };
  Ckpt.Done = [&](std::uint64_t Key) { persist::removeCheckpoint(Path(Key)); };

  MemoryBlockCache Cache;
  BlockCacheHooks CacheHooks = Cache.hooks();

  for (int Round = 0; Round < 4; ++Round) {
    std::string NewickA, NewickB;
    auto Run = [&](std::string &Out) {
      PipelineOptions Options;
      Options.BlockConcurrency = 4;
      Options.BlockCache = &CacheHooks;
      Options.BlockCheckpoint = &Ckpt;
      // Checkpoint aggressively so sinks are actually written during
      // the race window.
      Options.Bnb.CheckpointEveryNodes = 16;
      Out = toNewick(buildCompactSetTree(M, Options).Tree);
    };
    std::thread A([&] { Run(NewickA); });
    std::thread B([&] { Run(NewickB); });
    A.join();
    B.join();
    EXPECT_EQ(NewickA, toNewick(Reference.Tree)) << "round " << Round;
    EXPECT_EQ(NewickB, toNewick(Reference.Tree)) << "round " << Round;
  }
  EXPECT_GT(Cache.Hits, 0) << "colliding blocks should replay the cache";
}
