//===- tests/support_test.cpp - UnionFind, Rng, Bits ------------*- C++ -*-===//

#include "support/Bits.h"
#include "support/Rng.h"
#include "support/SingleFlight.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace mutk;

TEST(UnionFind, StartsAsSingletons) {
  UnionFind Uf(5);
  EXPECT_EQ(Uf.numComponents(), 5);
  for (int I = 0; I < 5; ++I) {
    EXPECT_EQ(Uf.find(I), I);
    EXPECT_EQ(Uf.componentSize(I), 1);
  }
}

TEST(UnionFind, UniteMergesAndReportsRepresentative) {
  UnionFind Uf(4);
  int Rep = Uf.unite(0, 1);
  EXPECT_GE(Rep, 0);
  EXPECT_TRUE(Uf.connected(0, 1));
  EXPECT_FALSE(Uf.connected(0, 2));
  EXPECT_EQ(Uf.numComponents(), 3);
  EXPECT_EQ(Uf.componentSize(0), 2);
}

TEST(UnionFind, UniteSameComponentReturnsMinusOne) {
  UnionFind Uf(3);
  EXPECT_GE(Uf.unite(0, 1), 0);
  EXPECT_EQ(Uf.unite(1, 0), -1);
  EXPECT_EQ(Uf.numComponents(), 2);
}

TEST(UnionFind, ComponentsAreSortedAndComplete) {
  UnionFind Uf(6);
  Uf.unite(4, 2);
  Uf.unite(2, 0);
  Uf.unite(5, 3);
  auto Groups = Uf.components();
  ASSERT_EQ(Groups.size(), 3u);
  EXPECT_EQ(Groups[0], (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(Groups[1], (std::vector<int>{1}));
  EXPECT_EQ(Groups[2], (std::vector<int>{3, 5}));
}

TEST(UnionFind, ChainMergesEndWithOneComponent) {
  const int N = 200;
  UnionFind Uf(N);
  for (int I = 1; I < N; ++I)
    EXPECT_GE(Uf.unite(I - 1, I), 0);
  EXPECT_EQ(Uf.numComponents(), 1);
  EXPECT_EQ(Uf.componentSize(17), N);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng R(9);
  std::set<int> Seen;
  for (int I = 0; I < 2000; ++I) {
    int V = R.nextInt(-2, 3);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 6u); // all values hit eventually
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, GaussianHasRoughlyZeroMean) {
  Rng R(13);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.nextGaussian();
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
}

TEST(Rng, ExponentialIsPositiveWithMeanOneOverLambda) {
  Rng R(17);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.nextExponential(2.0);
    EXPECT_GT(V, 0.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / N, 0.5, 0.05);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng R(19);
  std::vector<int> Perm = R.permutation(50);
  std::sort(Perm.begin(), Perm.end());
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Perm[static_cast<std::size_t>(I)], I);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng R(23);
  std::vector<int> V = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  std::sort(Orig.begin(), Orig.end());
  EXPECT_EQ(V, Orig);
}

TEST(Bits, LeafBitAndHasLeaf) {
  LeafMask M = leafBit(0) | leafBit(5) | leafBit(63);
  EXPECT_TRUE(hasLeaf(M, 0));
  EXPECT_TRUE(hasLeaf(M, 5));
  EXPECT_TRUE(hasLeaf(M, 63));
  EXPECT_FALSE(hasLeaf(M, 1));
  EXPECT_EQ(leafCount(M), 3);
}

TEST(Bits, ForEachLeafVisitsAscending) {
  LeafMask M = leafBit(3) | leafBit(10) | leafBit(40);
  std::vector<int> Seen;
  forEachLeaf(M, [&](int L) { Seen.push_back(L); });
  EXPECT_EQ(Seen, (std::vector<int>{3, 10, 40}));
}

TEST(Bits, EmptyMaskVisitsNothing) {
  int Count = 0;
  forEachLeaf(0, [&](int) { ++Count; });
  EXPECT_EQ(Count, 0);
  EXPECT_EQ(leafCount(0), 0);
}

TEST(KeyedMutex, SlotsAreReclaimedOnRelease) {
  KeyedMutex Km;
  EXPECT_EQ(Km.liveSlots(), 0u);
  {
    KeyedMutex::Guard A = Km.lock(1);
    KeyedMutex::Guard B = Km.lock(2);
    EXPECT_EQ(Km.liveSlots(), 2u);
    EXPECT_TRUE(A);
    A.release();
    EXPECT_EQ(Km.liveSlots(), 1u);
    A.release(); // idempotent
    EXPECT_EQ(Km.liveSlots(), 1u);
  }
  EXPECT_EQ(Km.liveSlots(), 0u);
}

TEST(KeyedMutex, GuardMoveTransfersOwnership) {
  KeyedMutex Km;
  KeyedMutex::Guard A = Km.lock(7);
  KeyedMutex::Guard B = std::move(A);
  EXPECT_FALSE(A);
  EXPECT_TRUE(B);
  EXPECT_EQ(Km.liveSlots(), 1u);
  B.release();
  EXPECT_EQ(Km.liveSlots(), 0u);
}

TEST(KeyedMutex, GuardSelfMoveIsANoOp) {
  KeyedMutex Km;
  KeyedMutex::Guard A = Km.lock(9);
  // A self-move must keep the slot held: a release-then-read-fields
  // implementation would unlock it and leave A as a dangling handle
  // whose destructor unlocks again.
  KeyedMutex::Guard &Alias = A;
  A = std::move(Alias);
  EXPECT_TRUE(A);
  EXPECT_EQ(Km.liveSlots(), 1u);
  A.release();
  EXPECT_FALSE(A);
  EXPECT_EQ(Km.liveSlots(), 0u);
}

TEST(KeyedMutex, SameKeyExcludesDifferentKeysDoNot) {
  KeyedMutex Km;
  std::atomic<int> Inside{0};
  std::atomic<int> MaxInside{0};
  std::atomic<int> CrossKey{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 200; ++I) {
        bool Contended = false;
        KeyedMutex::Guard G = Km.lock(42, &Contended);
        int Now = Inside.fetch_add(1) + 1;
        int Prev = MaxInside.load();
        while (Now > Prev && !MaxInside.compare_exchange_weak(Prev, Now)) {
        }
        Inside.fetch_sub(1);
        G.release();
        // A disjoint key must never block on key 42's holders.
        KeyedMutex::Guard Other = Km.lock(1000 + T);
        CrossKey.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(MaxInside.load(), 1) << "two holders inside one key's section";
  EXPECT_EQ(CrossKey.load(), 8 * 200);
  EXPECT_EQ(Km.liveSlots(), 0u);
}

TEST(KeyedMutex, ContendedFlagReportsWaiters) {
  KeyedMutex Km;
  bool FirstContended = true;
  KeyedMutex::Guard Holder = Km.lock(5, &FirstContended);
  EXPECT_FALSE(FirstContended) << "uncontended lock must not report a wait";
  Holder.release();

  // The contended flag is recorded *before* the waiter blocks, so a
  // waiter that reaches the slot while it is held must report true.
  // The only race is the gap between the waiter announcing itself and
  // its try_lock; a short grace sleep plus a bounded retry makes the
  // test deterministic in practice even on a single-core machine
  // (where two free-running hammer threads may never overlap).
  bool SawContention = false;
  for (int Attempt = 0; Attempt < 100 && !SawContention; ++Attempt) {
    KeyedMutex::Guard G = Km.lock(5);
    std::atomic<bool> AboutToLock{false};
    bool C = false;
    std::thread Waiter([&] {
      AboutToLock.store(true);
      KeyedMutex::Guard W = Km.lock(5, &C);
    });
    while (!AboutToLock.load())
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    G.release();
    Waiter.join();
    SawContention = C;
  }
  EXPECT_TRUE(SawContention);
  EXPECT_EQ(Km.liveSlots(), 0u);
}
