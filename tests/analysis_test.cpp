//===- tests/analysis_test.cpp - Profiles & ASCII rendering -----*- C++ -*-===//

#include "analysis/DotExport.h"
#include "analysis/Profile.h"
#include "bnb/SequentialBnb.h"
#include "graph/Mst.h"
#include "matrix/Generators.h"
#include "tree/AsciiTree.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace mutk;

TEST(MatrixProfile, UltrametricInputHasZeroDefect) {
  DistanceMatrix M = randomUltrametricMatrix(12, 3);
  MatrixProfile P = profileMatrix(M);
  EXPECT_EQ(P.NumSpecies, 12);
  EXPECT_NEAR(P.UltrametricityDefect, 0.0, 1e-12);
  // Distinct random heights: every triple has a strict closest pair.
  EXPECT_NEAR(P.TripleDecisiveness, 1.0, 1e-12);
  // Every non-root subtree is compact: n - 2 sets covering all species.
  EXPECT_EQ(P.NumCompactSets, 10);
  EXPECT_NEAR(P.CompactCoverage, 1.0, 1e-12);
  EXPECT_EQ(P.LargestBlock, 2);
}

TEST(MatrixProfile, UniformInputHasPositiveDefect) {
  DistanceMatrix M = uniformRandomMetric(14, 2);
  MatrixProfile P = profileMatrix(M);
  EXPECT_GT(P.UltrametricityDefect, 0.01);
  EXPECT_GT(P.MeanDistance, P.MinDistance);
  EXPECT_LT(P.MeanDistance, P.MaxDistance);
}

TEST(MatrixProfile, EquilateralHasNoDecisiveTriples) {
  DistanceMatrix M(6);
  for (int I = 0; I < 6; ++I)
    for (int J = I + 1; J < 6; ++J)
      M.set(I, J, 3.0);
  MatrixProfile P = profileMatrix(M);
  EXPECT_EQ(P.TripleDecisiveness, 0.0);
  EXPECT_EQ(P.NumCompactSets, 0);
  EXPECT_EQ(P.CompactCoverage, 0.0);
  EXPECT_EQ(P.LargestBlock, 6); // one flat root block
  EXPECT_NEAR(P.UltrametricityDefect, 0.0, 1e-12); // equilateral IS ultrametric
}

TEST(MatrixProfile, TinySizes) {
  EXPECT_EQ(profileMatrix(DistanceMatrix(0)).NumSpecies, 0);
  EXPECT_EQ(profileMatrix(DistanceMatrix(1)).NumSpecies, 1);
  DistanceMatrix M2(2);
  M2.set(0, 1, 7);
  MatrixProfile P = profileMatrix(M2);
  EXPECT_EQ(P.MaxDistance, 7.0);
  EXPECT_EQ(P.MeanDistance, 7.0);
}

TEST(MatrixProfile, PrintsAllFields) {
  std::ostringstream OS;
  printProfile(OS, profileMatrix(uniformRandomMetric(8, 1)));
  std::string Text = OS.str();
  EXPECT_NE(Text.find("species"), std::string::npos);
  EXPECT_NE(Text.find("ultrametricity defect"), std::string::npos);
  EXPECT_NE(Text.find("compact sets"), std::string::npos);
}

TEST(TreeProfile, CaterpillarIsMaximallyImbalanced) {
  PhyloTree T;
  int Acc = T.addLeaf(0);
  for (int I = 1; I < 8; ++I)
    Acc = T.addInternal(Acc, T.addLeaf(I), static_cast<double>(I));
  TreeProfile P = profileTree(T);
  EXPECT_EQ(P.NumLeaves, 8);
  EXPECT_EQ(P.MaxDepth, 7);
  EXPECT_NEAR(P.Imbalance, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(P.RootHeight, 7.0);
}

TEST(TreeProfile, BalancedTreeHasZeroImbalance) {
  PhyloTree T;
  int A = T.addInternal(T.addLeaf(0), T.addLeaf(1), 1);
  int B = T.addInternal(T.addLeaf(2), T.addLeaf(3), 1);
  T.addInternal(A, B, 2);
  TreeProfile P = profileTree(T);
  EXPECT_EQ(P.MaxDepth, 2);
  EXPECT_DOUBLE_EQ(P.Imbalance, 0.0);
  EXPECT_DOUBLE_EQ(P.Weight, T.weight());
}

TEST(TreeProfile, TinyTrees) {
  PhyloTree Empty;
  EXPECT_EQ(profileTree(Empty).NumLeaves, 0);
  PhyloTree Leaf;
  Leaf.addLeaf(0);
  TreeProfile P = profileTree(Leaf);
  EXPECT_EQ(P.NumLeaves, 1);
  EXPECT_EQ(P.MaxDepth, 0);
}

TEST(AsciiTree, RendersAllLeafNamesOncePerLine) {
  DistanceMatrix M = plantedClusterMetric(7, 5);
  MutResult R = solveMutSequential(M);
  std::string Art = toAsciiTree(R.Tree);
  for (int I = 0; I < 7; ++I) {
    std::string Name = "s" + std::to_string(I);
    EXPECT_NE(Art.find(Name + "\n"), std::string::npos) << Art;
  }
  // One line per node: 7 leaves + 6 internal junctions.
  EXPECT_EQ(std::count(Art.begin(), Art.end(), '\n'), 13);
}

TEST(AsciiTree, KnownSmallShape) {
  PhyloTree T;
  T.addInternal(T.addLeaf(0), T.addLeaf(1), 1.5);
  T.setNames({"human", "chimp"});
  EXPECT_EQ(toAsciiTree(T), "/-- human\n+\n\\-- chimp\n");
}

TEST(AsciiTree, HeightsShownWhenRequested) {
  PhyloTree T;
  T.addInternal(T.addLeaf(0), T.addLeaf(1), 2.5);
  AsciiTreeOptions Options;
  Options.ShowHeights = true;
  EXPECT_NE(toAsciiTree(T, Options).find("@2.5"), std::string::npos);
}

TEST(AsciiTree, EmptyTree) {
  PhyloTree T;
  EXPECT_EQ(toAsciiTree(T), "(empty tree)\n");
}

TEST(DotExport, TreeDigraphHasAllLeavesAndEdges) {
  DistanceMatrix M = plantedClusterMetric(6, 2);
  MutResult R = solveMutSequential(M);
  std::string Dot = toTreeDot(R.Tree, "mut");
  EXPECT_NE(Dot.find("digraph \"mut\""), std::string::npos);
  for (int I = 0; I < 6; ++I)
    EXPECT_NE(Dot.find("\"s" + std::to_string(I) + "\""), std::string::npos);
  // A binary tree over 6 leaves has 10 directed edges.
  int Arrows = 0;
  for (std::size_t Pos = Dot.find("->"); Pos != std::string::npos;
       Pos = Dot.find("->", Pos + 2))
    ++Arrows;
  EXPECT_EQ(Arrows, 10);
}

TEST(DotExport, EmptyTreeStillValidDot) {
  PhyloTree T;
  std::string Dot = toTreeDot(T);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find('}'), std::string::npos);
}

TEST(DotExport, MstGraphClustersMaximalCompactSets) {
  DistanceMatrix M = plantedClusterMetric(10, 4);
  auto Sets = findCompactSets(M);
  ASSERT_FALSE(Sets.empty());
  std::string Dot = toMstDot(M, kruskalMst(M), Sets);
  EXPECT_NE(Dot.find("graph \"mst\""), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_0"), std::string::npos);
  // Undirected edges: n - 1 of them.
  int Edges = 0;
  for (std::size_t Pos = Dot.find("--"); Pos != std::string::npos;
       Pos = Dot.find("--", Pos + 2))
    ++Edges;
  EXPECT_EQ(Edges, 9);
}

TEST(DotExport, QuotesEscapedInNames) {
  PhyloTree T;
  T.addInternal(T.addLeaf(0), T.addLeaf(1), 1.0);
  T.setNames({"we\"ird", "ok"});
  std::string Dot = toTreeDot(T);
  EXPECT_NE(Dot.find("we\\\"ird"), std::string::npos);
}

TEST(AsciiTree, BarsConnectSiblings) {
  // Three leaves: ((a,b),c). Expect a bar on the row between the (a,b)
  // junction and the root.
  auto T = parseNewick("((a:1,b:1):1,c:2);");
  ASSERT_TRUE(T.has_value());
  std::string Art = toAsciiTree(*T);
  // Shape:
  //     /-- a
  // /-- +
  // |   \-- b
  // +
  // \-- c
  EXPECT_EQ(Art, "    /-- a\n/-- +\n|   \\-- b\n+\n\\-- c\n");
}
