//===- tests/nni_test.cpp - NNI polish ---------------------------*- C++ -*-===//

#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "heur/NniSearch.h"
#include "heur/Upgma.h"
#include "matrix/Generators.h"
#include "tree/UltrametricFit.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(PhyloTreeSwap, SwapSubtreesRelinksBothSides) {
  // ((0,1),(2,3)): swap leaf 1 with leaf 2 -> ((0,2),(1,3)).
  PhyloTree T;
  int L0 = T.addLeaf(0);
  int L1 = T.addLeaf(1);
  int A = T.addInternal(L0, L1, 1);
  int L2 = T.addLeaf(2);
  int L3 = T.addLeaf(3);
  int B = T.addInternal(L2, L3, 1);
  T.addInternal(A, B, 2);

  T.swapSubtrees(L1, L2);
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_EQ(T.lcaOfSpecies(0, 2), A);
  EXPECT_EQ(T.lcaOfSpecies(1, 3), B);
}

TEST(PhyloTreeSwap, AncestorQueries) {
  PhyloTree T;
  int L0 = T.addLeaf(0);
  int L1 = T.addLeaf(1);
  int A = T.addInternal(L0, L1, 1);
  int L2 = T.addLeaf(2);
  int Root = T.addInternal(A, L2, 2);
  EXPECT_TRUE(T.isAncestorOf(Root, L0));
  EXPECT_TRUE(T.isAncestorOf(A, L1));
  EXPECT_TRUE(T.isAncestorOf(A, A));
  EXPECT_FALSE(T.isAncestorOf(L0, A));
  EXPECT_FALSE(T.isAncestorOf(A, L2));
}

TEST(Nni, NeverIncreasesCost) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    PhyloTree T = upgma(M); // possibly infeasible start; refit fixes it
    double Before = minimalWeightFor(T, M);
    NniReport R = nniImprove(T, M);
    EXPECT_LE(R.FinalCost, Before + 1e-9) << "seed " << Seed;
    EXPECT_NEAR(R.FinalCost, T.weight(), 1e-9);
    EXPECT_TRUE(T.dominatesMatrix(M));
    EXPECT_TRUE(T.isWellFormed());
  }
}

TEST(Nni, OptimalTreeIsAFixedPoint) {
  DistanceMatrix M = uniformRandomMetric(10, 4);
  MutResult Exact = solveMutSequential(M);
  PhyloTree T = Exact.Tree;
  NniReport R = nniImprove(T, M);
  EXPECT_EQ(R.MovesApplied, 0);
  EXPECT_NEAR(R.FinalCost, Exact.Cost, 1e-9);
}

TEST(Spr, ImprovesUpgmmOnHardInstances) {
  // UPGMM trees are typically NNI-optimal but not SPR-optimal: the
  // wider neighborhood must find improvements on some instances.
  int Improved = 0;
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(13, Seed);
    PhyloTree T = upgmm(M);
    NniReport R = sprImprove(T, M);
    EXPECT_LE(R.FinalCost, R.InitialCost + 1e-9);
    EXPECT_TRUE(T.dominatesMatrix(M));
    if (R.FinalCost < R.InitialCost - 1e-9)
      ++Improved;
  }
  EXPECT_GT(Improved, 0);
}

TEST(Spr, NeverBeatsOptimumAndOftenReachesIt) {
  int ReachedOptimum = 0;
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, Seed);
    double Optimal = solveMutSequential(M).Cost;
    PhyloTree T = upgmm(M);
    NniReport R = sprImprove(T, M);
    EXPECT_GE(R.FinalCost, Optimal - 1e-9) << "seed " << Seed;
    if (R.FinalCost <= Optimal + 1e-9)
      ++ReachedOptimum;
  }
  EXPECT_GT(ReachedOptimum, 0);
}

TEST(Spr, OptimalTreeIsAFixedPoint) {
  DistanceMatrix M = uniformRandomMetric(9, 8);
  MutResult Exact = solveMutSequential(M);
  PhyloTree T = Exact.Tree;
  NniReport R = sprImprove(T, M);
  EXPECT_EQ(R.MovesApplied, 0);
  EXPECT_NEAR(R.FinalCost, Exact.Cost, 1e-9);
}

TEST(Spr, TinyTrees) {
  DistanceMatrix M2(2);
  M2.set(0, 1, 4);
  PhyloTree T = upgmm(M2);
  NniReport R = sprImprove(T, M2);
  EXPECT_EQ(R.MovesApplied, 0);
  EXPECT_DOUBLE_EQ(R.FinalCost, 4.0);
}

TEST(Spr, SubsumesNni) {
  // Any NNI improvement is also available to SPR: SPR's final cost is
  // never above NNI's.
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    PhyloTree A = upgma(M);
    PhyloTree B = A;
    NniReport Nni = nniImprove(A, M);
    NniReport Spr = sprImprove(B, M);
    EXPECT_LE(Spr.FinalCost, Nni.FinalCost + 1e-9) << "seed " << Seed;
  }
}

TEST(Nni, NeverBeatsTheOptimum) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    double Optimal = solveMutSequential(M).Cost;
    PhyloTree T = upgmm(M);
    NniReport R = nniImprove(T, M);
    EXPECT_GE(R.FinalCost, Optimal - 1e-9) << "seed " << Seed;
  }
}

TEST(Nni, RoundBudgetRespected) {
  DistanceMatrix M = uniformRandomMetric(14, 2);
  PhyloTree T = upgma(M);
  NniReport R = nniImprove(T, M, /*MaxRounds=*/1);
  EXPECT_LE(R.Rounds, 1);
  EXPECT_LE(R.MovesApplied, 1);
}

TEST(Nni, TinyTrees) {
  DistanceMatrix M2(2);
  M2.set(0, 1, 4);
  PhyloTree T = upgmm(M2);
  NniReport R = nniImprove(T, M2);
  EXPECT_EQ(R.MovesApplied, 0);
  EXPECT_DOUBLE_EQ(R.FinalCost, 4.0);

  PhyloTree Empty;
  NniReport RE = nniImprove(Empty, DistanceMatrix(0));
  EXPECT_EQ(RE.Rounds, 0);
}

TEST(Nni, PipelinePolishClosesFallbackGap) {
  // Force the UPGMM fallback (equilateral-free uniform instance with a
  // tiny block cap), then check the polish only helps.
  DistanceMatrix M = uniformRandomMetric(16, 3);
  PipelineOptions Plain;
  Plain.MaxExactBlockSize = 2;
  PipelineResult A = buildCompactSetTree(M, Plain);

  PipelineOptions Polished = Plain;
  Polished.PolishTopology = true;
  PipelineResult B = buildCompactSetTree(M, Polished);

  EXPECT_LE(B.Cost, A.Cost + 1e-9);
  EXPECT_TRUE(B.Tree.dominatesMatrix(M));
  if (B.PolishMoves > 0)
    EXPECT_LT(B.Cost, A.Cost);
}

class NniProperty : public testing::TestWithParam<int> {};

TEST_P(NniProperty, MonotoneAcrossSizesAndWorkloads) {
  int N = GetParam();
  for (std::uint64_t Seed = 30; Seed < 32; ++Seed) {
    for (const DistanceMatrix &M :
         {uniformRandomMetric(N, Seed), plantedClusterMetric(N, Seed)}) {
      PhyloTree T = upgmm(M);
      NniReport R = nniImprove(T, M);
      EXPECT_LE(R.FinalCost, R.InitialCost + 1e-9);
      EXPECT_TRUE(T.dominatesMatrix(M));
      EXPECT_TRUE(T.hasMonotoneHeights());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NniProperty, testing::Values(2, 3, 5, 8, 13, 21));
