//===- tests/compact_pipeline_test.cpp - The fast technique -----*- C++ -*-===//

#include "compact/CompactSetPipeline.h"
#include "heur/Upgma.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "seq/EvolutionSim.h"
#include "tree/Newick.h"
#include "tree/RobinsonFoulds.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(Pipeline, TrivialSizes) {
  DistanceMatrix M0(0);
  PipelineResult R0 = buildCompactSetTree(M0);
  EXPECT_EQ(R0.Cost, 0.0);

  DistanceMatrix M1(1);
  PipelineResult R1 = buildCompactSetTree(M1);
  EXPECT_EQ(R1.Tree.numLeaves(), 1);

  DistanceMatrix M2(2);
  M2.set(0, 1, 4);
  PipelineResult R2 = buildCompactSetTree(M2);
  EXPECT_DOUBLE_EQ(R2.Cost, 4.0);
}

TEST(Pipeline, TreeIsWellFormedAndFeasible) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(20, Seed);
    PipelineResult R = buildCompactSetTree(M);
    EXPECT_TRUE(R.Tree.isWellFormed()) << "seed " << Seed;
    EXPECT_TRUE(R.Tree.hasMonotoneHeights()) << "seed " << Seed;
    // Maximum condensation keeps the merged tree feasible for M.
    EXPECT_TRUE(R.Tree.dominatesMatrix(M)) << "seed " << Seed;
    EXPECT_EQ(R.Tree.numLeaves(), 20);
    EXPECT_EQ(R.HeightClamps, 0) << "maximum mode never clamps";
    EXPECT_NEAR(R.Cost, R.Tree.weight(), 1e-9);
  }
}

TEST(Pipeline, NeverBeatsExactOptimum) {
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(12, Seed);
    double Optimal = solveMutSequential(M).Cost;
    PipelineResult R = buildCompactSetTree(M);
    EXPECT_GE(R.Cost, Optimal - 1e-9) << "seed " << Seed;
  }
}

TEST(Pipeline, NearOptimalOnClusteredData) {
  // The paper reports <5% cost difference on random data and <=1.5% on
  // HMDNA; planted clusters are the friendly case, so stay within 5%.
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(13, Seed);
    double Optimal = solveMutSequential(M).Cost;
    PipelineResult R = buildCompactSetTree(M);
    EXPECT_LE(R.Cost, Optimal * 1.05) << "seed " << Seed;
  }
}

TEST(Pipeline, ExactOnUltrametricInput) {
  DistanceMatrix M = randomUltrametricMatrix(15, 9);
  double Optimal = solveMutSequential(M).Cost;
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_NEAR(R.Cost, Optimal, 1e-9);
  // Every block is a 2x2 matrix: the hierarchy is the generating tree.
  for (const BlockReport &B : R.Blocks)
    EXPECT_EQ(B.NumBlocks, 2);
}

TEST(Pipeline, NoCompactSetsMeansOneBlock) {
  // The equilateral matrix provably has no compact sets (strictness
  // fails everywhere): the pipeline degenerates to one exact solve of
  // the whole matrix.
  DistanceMatrix M(10);
  for (int I = 0; I < 10; ++I)
    for (int J = I + 1; J < 10; ++J)
      M.set(I, J, 5.0);
  ASSERT_TRUE(findCompactSets(M).empty());
  PipelineResult R = buildCompactSetTree(M);
  ASSERT_EQ(R.Blocks.size(), 1u);
  EXPECT_EQ(R.Blocks[0].NumBlocks, 10);
  EXPECT_NEAR(R.Cost, solveMutSequential(M).Cost, 1e-9);
}

TEST(Pipeline, BlockAccountingIsConsistent) {
  DistanceMatrix M = plantedClusterMetric(24, 5);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_FALSE(R.Blocks.empty());
  // Hierarchy block count: internal nodes of the laminar hierarchy.
  std::uint64_t Branched = 0;
  for (const BlockReport &B : R.Blocks) {
    EXPECT_GE(B.NumBlocks, 2);
    Branched += B.Branched;
  }
  EXPECT_EQ(Branched, R.TotalStats.Branched);
}

TEST(Pipeline, SizeCapForcesHeuristicBlocks) {
  // Equilateral: no compact sets, so one 12-wide block that exceeds the
  // cap and falls back to UPGMM.
  DistanceMatrix M(12);
  for (int I = 0; I < 12; ++I)
    for (int J = I + 1; J < 12; ++J)
      M.set(I, J, 3.0);
  PipelineOptions Options;
  Options.MaxExactBlockSize = 4;
  PipelineResult R = buildCompactSetTree(M, Options);
  ASSERT_EQ(R.Blocks.size(), 1u);
  EXPECT_FALSE(R.Blocks[0].Exact);
  // UPGMM fallback keeps feasibility.
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
  EXPECT_NEAR(R.Cost, upgmm(M).weight(), 1e-9);
}

TEST(Pipeline, SimulatedClusterSolverMatchesSequentialSolver) {
  DistanceMatrix M = plantedClusterMetric(16, 2);
  PipelineOptions Sequential;
  PipelineOptions Cluster;
  Cluster.Solver = BlockSolver::SimulatedCluster;
  Cluster.Cluster.NumNodes = 8;
  PipelineResult A = buildCompactSetTree(M, Sequential);
  PipelineResult B = buildCompactSetTree(M, Cluster);
  EXPECT_NEAR(A.Cost, B.Cost, 1e-9);
  EXPECT_GT(B.TotalVirtualTime, 0.0);
  EXPECT_GE(B.TotalVirtualTime, B.ParallelVirtualTime);
}

TEST(Pipeline, MinimumAndAverageModesProduceValidTrees) {
  for (CondenseMode Mode : {CondenseMode::Minimum, CondenseMode::Average}) {
    DistanceMatrix M = plantedClusterMetric(15, 6);
    PipelineOptions Options;
    Options.Mode = Mode;
    PipelineResult R = buildCompactSetTree(M, Options);
    EXPECT_TRUE(R.Tree.isWellFormed());
    EXPECT_TRUE(R.Tree.hasMonotoneHeights());
    EXPECT_EQ(R.Tree.numLeaves(), 15);
    // Min/avg condensation may understate cross distances: the merged
    // tree can be infeasible for M, but must never cost more than max
    // mode by construction of the same hierarchy.
    PipelineResult MaxR = buildCompactSetTree(M);
    EXPECT_LE(R.Cost, MaxR.Cost + 1e-9);
  }
}

TEST(Pipeline, RecoversPlantedTopologyOnCleanData) {
  // With tiny jitter, the compact hierarchy mirrors the generating tree
  // and the pipeline recovers the exact MUT topology.
  DistanceMatrix M = plantedClusterMetric(12, 13, 0.02);
  MutResult Exact = solveMutSequential(M);
  PipelineResult Fast = buildCompactSetTree(M);
  EXPECT_NEAR(Fast.Cost, Exact.Cost, Exact.Cost * 0.02);
  EXPECT_LE(normalizedRfDistance(Fast.Tree, Exact.Tree), 0.4);
}

TEST(Pipeline, SavesWorkOnClusteredInputs) {
  // The headline claim: with compact sets the B&B touches far fewer
  // nodes than without.
  DistanceMatrix M = plantedClusterMetric(18, 1);
  PipelineResult Fast = buildCompactSetTree(M);
  MutResult Full = solveMutSequential(M);
  EXPECT_LT(Fast.TotalStats.Branched, Full.Stats.Branched);
}

TEST(Pipeline, HmdnaWorkloadEndToEnd) {
  DistanceMatrix M = hmdnaLikeMatrix(18, 3);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_EQ(R.Tree.numLeaves(), 18);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
  // The Newick output mentions every species name.
  std::string Text = toNewick(R.Tree);
  EXPECT_NE(Text.find("dna0"), std::string::npos);
  EXPECT_NE(Text.find("dna17"), std::string::npos);
}

class PipelineProperty : public testing::TestWithParam<int> {};

TEST_P(PipelineProperty, FeasibleAndCompleteAcrossSizes) {
  int N = GetParam();
  for (std::uint64_t Seed = 50; Seed < 53; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(N, Seed);
    PipelineResult R = buildCompactSetTree(M);
    EXPECT_EQ(R.Tree.numLeaves(), N);
    EXPECT_TRUE(R.Tree.dominatesMatrix(M));
    EXPECT_TRUE(R.Tree.hasMonotoneHeights());
    EXPECT_EQ(R.HeightClamps, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineProperty,
                         testing::Values(2, 3, 5, 9, 17, 26, 40));
