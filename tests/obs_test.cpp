//===- tests/obs_test.cpp - Observability layer tests ---------------------===//
//
// Covers src/obs bottom-up: counters/gauges/histograms under concurrent
// writers, registry snapshot consistency and rendering, structured-log
// level filtering and record format, and an end-to-end STATS round trip
// over a live socket server asserting the cache counters move after a
// duplicate-matrix request.
//
//===----------------------------------------------------------------------===//

#include "obs/Instruments.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace mutk;
using namespace mutk::obs;

namespace {

//===----------------------------------------------------------------------===//
// Instruments under concurrent writers
//===----------------------------------------------------------------------===//

TEST(ObsCounter, ConcurrentIncrementsAllLand) {
  Counter C;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 10'000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), static_cast<std::uint64_t>(NumThreads) * PerThread);
}

TEST(ObsGauge, MatchedAddSubReturnsToZero) {
  Gauge G;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 5'000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&G] {
      for (int I = 0; I < PerThread; ++I) {
        G.add(3);
        G.sub(3);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(G.value(), 0);
  G.set(-7);
  EXPECT_EQ(G.value(), -7);
}

TEST(ObsHistogram, ConcurrentRecordsKeepCountAndSum) {
  Histogram H;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 4'000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I < PerThread; ++I)
        H.record(2.0);
    });
  for (std::thread &T : Threads)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<std::uint64_t>(NumThreads) * PerThread);
  EXPECT_NEAR(S.Sum, 2.0 * NumThreads * PerThread,
              0.01 * NumThreads * PerThread);
  EXPECT_GT(S.P50, 0.0);
}

TEST(ObsHistogram, QuantilesOrderedAndBucketed) {
  Histogram H;
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_DOUBLE_EQ(H.snapshot().P99, 0.0);
  for (int I = 0; I < 90; ++I)
    H.record(4.0); // bucket [4,8)
  for (int I = 0; I < 10; ++I)
    H.record(1000.0); // bucket [512,1024) midpoint 768
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_GT(S.P50, 2.0);
  EXPECT_LT(S.P50, 10.0);
  EXPECT_LE(S.P50, S.P95);
  EXPECT_LE(S.P95, S.P99);
  EXPECT_GT(S.P99, 300.0);
  EXPECT_GE(S.Max, S.P99);
}

//===----------------------------------------------------------------------===//
// Registry: registration, snapshot, rendering
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry R;
  Counter &A = R.counter("x_total");
  Counter &B = R.counter("x_total");
  EXPECT_EQ(&A, &B);
  A.inc(5);
  EXPECT_EQ(B.value(), 5u);
  EXPECT_NE(static_cast<void *>(&R.gauge("g")),
            static_cast<void *>(&R.counter("g2")));
}

TEST(ObsRegistry, SnapshotWhileWritersRun) {
  MetricsRegistry R;
  Counter &C = R.counter("writes_total");
  Histogram &H = R.histogram("lat_ms");
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      C.inc();
      H.record(1.5);
    }
  });
  for (int I = 0; I < 50; ++I) {
    MetricsSnapshot S = R.snapshot();
    ASSERT_EQ(S.Counters.size(), 1u);
    ASSERT_EQ(S.Histograms.size(), 1u);
    EXPECT_EQ(S.Counters[0].first, "writes_total");
  }
  Stop.store(true);
  Writer.join();
  MetricsSnapshot Final = R.snapshot();
  EXPECT_EQ(Final.Counters[0].second, C.value());
  EXPECT_EQ(Final.Histograms[0].second.Count, H.count());
}

TEST(ObsRegistry, RendersPrometheusAndJson) {
  MetricsRegistry R;
  R.counter("mutk_test_events_total").inc(3);
  R.counter("mutk_test_shard_total{shard=\"0\"}").inc(1);
  R.gauge("mutk_test_depth").set(4);
  R.histogram("mutk_test_ms").record(10.0);

  std::string Prom = R.renderPrometheus();
  EXPECT_NE(Prom.find("# TYPE mutk_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(Prom.find("mutk_test_events_total 3"), std::string::npos);
  EXPECT_NE(Prom.find("mutk_test_shard_total{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(Prom.find("mutk_test_depth 4"), std::string::npos);
  EXPECT_NE(Prom.find("mutk_test_ms_count 1"), std::string::npos);
  EXPECT_NE(Prom.find("quantile=\"0.95\""), std::string::npos);

  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"mutk_test_events_total\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"mutk_test_depth\":4"), std::string::npos);
  EXPECT_NE(Json.find("\"count\":1"), std::string::npos);
  // Label quotes must arrive escaped inside the JSON key.
  EXPECT_NE(Json.find("mutk_test_shard_total{shard=\\\"0\\\"}"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Structured logging
//===----------------------------------------------------------------------===//

/// Captures emitted records for the duration of a test and restores the
/// stderr sink afterwards.
class LogCapture {
public:
  LogCapture() {
    setLogSink([this](std::string_view Line) {
      std::lock_guard<std::mutex> Lock(Mu);
      Lines.emplace_back(Line);
    });
  }
  ~LogCapture() {
    setLogSink(nullptr);
    configureLogging("info");
  }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> Lock(Mu);
    return Lines;
  }

private:
  std::mutex Mu;
  std::vector<std::string> Lines;
};

TEST(ObsLog, LevelFilteringAndRecordFormat) {
  LogCapture Capture;
  configureLogging("warn");
  log(LogLevel::Info, "queue", "dropped");
  log(LogLevel::Warn, "queue", "overflow").kv("depth", 17).kv("ok", false);
  std::vector<std::string> Lines = Capture.lines();
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(Lines[0].find("comp=queue"), std::string::npos);
  EXPECT_NE(Lines[0].find("msg=\"overflow\""), std::string::npos);
  EXPECT_NE(Lines[0].find("depth=17"), std::string::npos);
  EXPECT_NE(Lines[0].find("ok=false"), std::string::npos);
  EXPECT_NE(Lines[0].find("ts="), std::string::npos);
  EXPECT_EQ(Lines[0].back(), '\n');
}

TEST(ObsLog, ComponentOverridesBeatDefault) {
  LogCapture Capture;
  configureLogging("error,cache=debug");
  log(LogLevel::Debug, "cache", "probe").kv("key", 1);
  log(LogLevel::Warn, "server", "suppressed");
  log(LogLevel::Error, "server", "kept");
  std::vector<std::string> Lines = Capture.lines();
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_NE(Lines[0].find("comp=cache"), std::string::npos);
  EXPECT_NE(Lines[1].find("msg=\"kept\""), std::string::npos);
}

TEST(ObsLog, ValuesWithSpacesAreQuoted) {
  LogCapture Capture;
  configureLogging("info");
  log(LogLevel::Info, "svc", "x").kv("err", "queue is full").kv("n", 2.5);
  std::vector<std::string> Lines = Capture.lines();
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("err=\"queue is full\""), std::string::npos);
  EXPECT_NE(Lines[0].find("n=2.5"), std::string::npos);
}

TEST(ObsLog, ConcurrentEmittersNeverInterleave) {
  LogCapture Capture;
  configureLogging("info");
  constexpr int NumThreads = 4;
  constexpr int PerThread = 200;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T] {
      for (int I = 0; I < PerThread; ++I)
        log(LogLevel::Info, "worker", "tick").kv("t", T).kv("i", I);
    });
  for (std::thread &T : Threads)
    T.join();
  std::vector<std::string> Lines = Capture.lines();
  ASSERT_EQ(Lines.size(),
            static_cast<std::size_t>(NumThreads) * PerThread);
  for (const std::string &L : Lines) {
    // Every record is complete: exactly one ts= prefix and one newline.
    EXPECT_EQ(L.rfind("ts=", 0), 0u);
    EXPECT_EQ(L.find('\n'), L.size() - 1);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end: STATS verb over a live socket
//===----------------------------------------------------------------------===//

TEST(ObsEndToEnd, StatsJsonMovesAfterDuplicateBuild) {
  ServiceOptions Options;
  Options.NumWorkers = 2;
  TreeService Service(Options);
  SocketServer Server(Service);
  std::string SocketPath = testing::TempDir() + "obs_e2e.sock";
  std::string Error;
  ASSERT_TRUE(Server.listenUnix(SocketPath, &Error)) << Error;
  Server.start();

  ServiceClient Client;
  ASSERT_TRUE(Client.connectUnix(SocketPath, &Error)) << Error;

  DistanceMatrix M(6);
  for (int I = 0; I < 6; ++I)
    for (int J = I + 1; J < 6; ++J)
      M.set(I, J, static_cast<double>(I + J + 1));

  // First build misses the whole-matrix cache, second one hits it.
  std::optional<StatsSnapshot> Before = Client.stats(&Error);
  ASSERT_TRUE(Before.has_value()) << Error;
  for (int Round = 0; Round < 2; ++Round) {
    BuildRequest Request;
    Request.Matrix = M;
    std::optional<BuildResponse> Resp = Client.build(Request, &Error);
    ASSERT_TRUE(Resp.has_value()) << Error;
    ASSERT_TRUE(Resp->ok()) << Resp->Message;
    EXPECT_EQ(Resp->CacheHit, Round == 1);
  }
  std::optional<StatsSnapshot> After = Client.stats(&Error);
  ASSERT_TRUE(After.has_value()) << Error;
  EXPECT_EQ(After->Completed - Before->Completed, 2u);
  EXPECT_EQ(After->WholeHits - Before->WholeHits, 1u);
  EXPECT_EQ(After->WholeMisses - Before->WholeMisses, 1u);

  // StatsJson: full registry dump. The build above went through queue,
  // cache, solver and pipeline, so every advertised counter family is
  // present and the line-protocol JSON parses far enough to find them.
  std::optional<std::string> Json = Client.statsJson(&Error);
  ASSERT_TRUE(Json.has_value()) << Error;
  EXPECT_EQ(Json->front(), '{');
  EXPECT_EQ(Json->back(), '}');
  for (const char *Key :
       {"\"service\":", "\"registry\":", "\"counters\":", "\"histograms\":",
        "\"mutk_service_requests_total\":", "\"mutk_queue_enqueued_total\":",
        "\"mutk_cache_whole_hits_total\":", "\"mutk_bnb_solves_total\":",
        "\"mutk_pipeline_runs_total\":", "\"mutk_service_request_ok_ms\":",
        "\"mutk_server_frames_total\":"})
    EXPECT_NE(Json->find(Key), std::string::npos) << Key;

  // The global singletons moved: whole-cache hit recorded, solver ran.
  EXPECT_GE(serviceInstruments().WholeHits.value(), 1u);
  EXPECT_GE(bnbInstruments().Solves.value(), 1u);
  EXPECT_GE(pipelineInstruments().Runs.value(), 1u);
  EXPECT_GE(serverInstruments().FramesRead.value(), 4u);

  Client.disconnect();
  Server.stop();
  Service.stop();
}

} // namespace
