//===- tests/audit_test.cpp - MUTK_AUDIT harness behavior -----------------===//
//
// Verifies the two halves of the audit contract (support/Audit.h): in
// audit-enabled builds (Debug and every sanitizer preset) a violated
// invariant aborts loudly — demonstrated by feeding a deliberately
// non-metric matrix to the compact-set pipeline; in Release builds the
// same code path runs to completion because the audits compile to
// nothing.
//
//===----------------------------------------------------------------------===//

#include "compact/CompactSetPipeline.h"
#include "matrix/MetricUtils.h"
#include "support/Audit.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

/// d(0,2) = 100 while d(0,1) = d(1,2) = 1: a gross triangle-inequality
/// violation no generator or repair pass would ever produce.
DistanceMatrix nonMetricMatrix() {
  DistanceMatrix M(4);
  M.set(0, 1, 1.0);
  M.set(1, 2, 1.0);
  M.set(0, 2, 100.0);
  M.set(0, 3, 1.0);
  M.set(1, 3, 1.0);
  M.set(2, 3, 1.0);
  return M;
}

} // namespace

TEST(Audit, BuildFlagMatchesConstexprProbe) {
#if MUTK_AUDIT_ENABLED
  EXPECT_TRUE(auditsEnabled());
#else
  EXPECT_FALSE(auditsEnabled());
#endif
}

TEST(Audit, SampleMatrixReallyViolatesTheTriangleInequality) {
  EXPECT_FALSE(isMetric(nonMetricMatrix()));
}

#if MUTK_AUDIT_ENABLED

// The pipeline's entry audit must catch the violation and abort with
// the audit banner (not crash some other way deeper in the solve).
TEST(AuditDeathTest, NonMetricPipelineInputFires) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(buildCompactSetTree(nonMetricMatrix()),
               "MUTK AUDIT FAILED");
}

// A passing audit is silent and free of side effects.
TEST(Audit, MetricInputPassesAllAudits) {
  DistanceMatrix M(3);
  M.set(0, 1, 2.0);
  M.set(1, 2, 2.0);
  M.set(0, 2, 3.0);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_TRUE(R.Tree.isWellFormed());
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

#else

// Release: the audit macro must compile to nothing — a false condition
// is never evaluated, and the non-metric input flows through the
// pipeline unchecked (structurally fine, mathematically the caller's
// problem).
TEST(Audit, CompiledOutInRelease) {
  MUTK_AUDIT(false, "never evaluated in Release builds");
  PipelineResult R = buildCompactSetTree(nonMetricMatrix());
  EXPECT_TRUE(R.Tree.isWellFormed());
}

#endif
