//===- tests/integration_test.cpp - Paper claims as invariants --*- C++ -*-===//
//
// Miniature versions of the reproduced experiments, small enough for CI:
// each test pins one of the papers' headline claims so a regression in
// any module that would change an experiment's *shape* fails loudly.
//
//===----------------------------------------------------------------------===//

#include "analysis/Profile.h"
#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "matrix/Generators.h"
#include "mp/MpBnb.h"
#include "seq/EvolutionSim.h"
#include "sim/ClusterSim.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

DistanceMatrix unif(int N, std::uint64_t Seed) {
  return uniformRandomMetric(N, Seed, 1.0, 100.0);
}

} // namespace

// PaCT Figure 8: compact sets save most of the work on random data.
TEST(PaperClaims, CompactSetsSaveWorkOnRandomData) {
  std::uint64_t FullWork = 0, FastWork = 0;
  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DistanceMatrix M = unif(16, Seed);
    FullWork += solveMutSequential(M).Stats.Branched;
    FastWork += buildCompactSetTree(M).TotalStats.Branched;
  }
  // The paper reports 77.19%..99.7% time saved; require at least half
  // the branching to vanish in this mini version.
  EXPECT_LT(FastWork * 2, FullWork);
}

// PaCT Figure 9: the cost difference stays under 5%.
TEST(PaperClaims, CompactSetCostWithinFivePercent) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
    DistanceMatrix M = unif(14, Seed);
    double Exact = solveMutSequential(M).Cost;
    double Fast = buildCompactSetTree(M).Cost;
    EXPECT_LE(Fast, Exact * 1.05) << "seed " << Seed;
    EXPECT_GE(Fast, Exact - 1e-9) << "seed " << Seed;
  }
}

// PaCT Figures 10-12: on DNA data the costs are nearly equal (<= 1.5%).
TEST(PaperClaims, DnaCostsNearlyEqual) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
    DistanceMatrix M = hmdnaLikeMatrix(16, Seed);
    double Exact = solveMutSequential(M).Cost;
    double Fast = buildCompactSetTree(M).Cost;
    EXPECT_LE(Fast, Exact * 1.015 + 1e-9) << "seed " << Seed;
  }
}

// PaCT Figure 11's observation: DNA data is close to a molecular clock,
// so even the plain B&B stays cheap (the matrix profile explains why).
TEST(PaperClaims, DnaInstancesAreClockLike) {
  DistanceMatrix Dna = hmdnaLikeMatrix(14, 2);
  DistanceMatrix Random = unif(14, 2);
  MatrixProfile DnaProfile = profileMatrix(Dna);
  MatrixProfile RandomProfile = profileMatrix(Random);
  EXPECT_LT(DnaProfile.UltrametricityDefect,
            RandomProfile.UltrametricityDefect);
  EXPECT_GT(DnaProfile.CompactCoverage, 0.0);
}

// HPCAsia Figures 1-3: 16 nodes finish hard instances much earlier than
// one node; the cost stays the provable optimum.
TEST(PaperClaims, SixteenNodesBeatOneOnHardInstances) {
  DistanceMatrix M = unif(15, 2);
  ClusterSimResult Seq = simulateSequentialBaseline(M);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  ClusterSimResult Par = simulateClusterBnb(M, Spec);
  EXPECT_NEAR(Par.Cost, Seq.Cost, 1e-9);
  EXPECT_LT(Par.Makespan * 2, Seq.Makespan); // at least 2x speedup here
}

// HPCAsia Figure 4: the 3-3 relationship preserves the optimum while
// never increasing the explored space.
TEST(PaperClaims, ThreeThreePreservesOptimum) {
  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DistanceMatrix M = hmdnaLikeMatrix(13, Seed);
    MutResult Plain = solveMutSequential(M);
    BnbOptions Options;
    Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
    MutResult Constrained = solveMutSequential(M, Options);
    EXPECT_NEAR(Plain.Cost, Constrained.Cost, 1e-9) << "seed " << Seed;
    // Pruning removes subtrees, but a pruned subtree can also be the one
    // that would have supplied an early upper bound — allow small noise.
    EXPECT_LE(Constrained.Stats.Branched,
              Plain.Stats.Branched + Plain.Stats.Branched / 10 + 10);
  }
}

// NCS: the message-passing port and the simulator agree with the
// sequential solver — one optimum across all three architectures.
TEST(PaperClaims, AllArchitecturesAgreeOnTheOptimum) {
  DistanceMatrix M = hmdnaLikeMatrix(12, 7);
  double Expected = solveMutSequential(M).Cost;
  EXPECT_NEAR(solveMutMessagePassing(M, 3).Cost, Expected, 1e-9);
  ClusterSpec Grid;
  Grid.NumNodes = 6;
  Grid.NodeSpeeds = {1.0, 0.9, 0.6, 1.0, 0.9, 0.6};
  Grid.UbBroadcastLatency = 40.0;
  EXPECT_NEAR(simulateClusterBnb(M, Grid).Cost, Expected, 1e-9);
}

// End-to-end: sequences -> edit distances -> decomposition -> merged
// tree that is feasible, complete, and structurally sane.
TEST(PaperClaims, FullPipelineEndToEnd) {
  EvolutionResult Sim = simulateEvolution(20, 9);
  DistanceMatrix M = editDistanceMatrix(Sim.Sequences, Sim.Names);
  PipelineResult R = buildCompactSetTree(M);
  EXPECT_EQ(R.Tree.numLeaves(), 20);
  EXPECT_TRUE(R.Tree.isWellFormed());
  EXPECT_TRUE(R.Tree.hasMonotoneHeights());
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
  TreeProfile Shape = profileTree(R.Tree);
  EXPECT_EQ(Shape.NumLeaves, 20);
  EXPECT_GT(Shape.RootHeight, 0.0);
}
