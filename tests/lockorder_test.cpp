//===- tests/lockorder_test.cpp - Runtime lock-order auditor tests --------===//
//
// Proves the MUTK_AUDIT lock-order auditor is live in audit-enabled
// builds: consistent nesting is learned silently, an inversion of a
// learned edge aborts with both acquisition stacks in the summary line,
// and the escape hatches (try_lock, same-name siblings, unnamed locks)
// never fire. In Release builds the auditor compiles to nothing and
// this file only checks that locking still works.
//
//===----------------------------------------------------------------------===//

#include "support/Mutex.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(LockOrder, ConsistentNestingIsSilent) {
  Mutex A{"lockorder.t1.a"};
  Mutex B{"lockorder.t1.b"};
  for (int I = 0; I < 3; ++I) {
    MutexLock LockA(A);
    MutexLock LockB(B);
  }
  SUCCEED();
}

TEST(LockOrder, SameNameSiblingsAreExemptEitherOrder) {
  // Locks sharing one class-level name (KeyedMutex slots, cache shards)
  // are unordered by design; nesting them both ways must not abort. The
  // auditor keys its edge table by *name*, so fresh objects per scope
  // exercise the same exemption while keeping each object pair
  // single-ordered (TSan's object-identity deadlock detector would
  // otherwise flag the deliberate cycle).
  {
    Mutex A{"lockorder.t2.slot"};
    Mutex B{"lockorder.t2.slot"};
    MutexLock LockA(A);
    MutexLock LockB(B);
  }
  {
    Mutex A{"lockorder.t2.slot"};
    Mutex B{"lockorder.t2.slot"};
    MutexLock LockB(B);
    MutexLock LockA(A);
  }
  SUCCEED();
}

#if MUTK_AUDIT_ENABLED

TEST(LockOrder, HeldDepthTracksAcquisitions) {
  const int Base = lockorder::heldDepth();
  Mutex A{"lockorder.t3.a"};
  Mutex B{"lockorder.t3.b"};
  {
    MutexLock LockA(A);
    EXPECT_EQ(lockorder::heldDepth(), Base + 1);
    MutexLock LockB(B);
    EXPECT_EQ(lockorder::heldDepth(), Base + 2);
  }
  EXPECT_EQ(lockorder::heldDepth(), Base);
}

TEST(LockOrderDeathTest, InversionAbortsWithBothStacks) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex A{"lockorder.t4.a"};
        Mutex B{"lockorder.t4.b"};
        {
          // Establish a -> b.
          MutexLock LockA(A);
          MutexLock LockB(B);
        }
        {
          // Invert it: acquiring a while holding b must abort.
          MutexLock LockB(B);
          MutexLock LockA(A);
        }
      },
      "MUTK AUDIT FAILED: lock-order inversion: acquiring 'lockorder.t4.a' "
      "while holding 'lockorder.t4.b' \\| this thread: lockorder.t4.b -> "
      "lockorder.t4.a \\| established order: lockorder.t4.a -> lockorder.t4.b");
}

TEST(LockOrder, TryLockNeverAborts) {
  Mutex A{"lockorder.t5.a"};
  Mutex B{"lockorder.t5.b"};
  {
    // Learn a -> b.
    MutexLock LockA(A);
    MutexLock LockB(B);
  }
  {
    // A try_lock against the learned order records, but never condemns:
    // it cannot deadlock (the failure path just moves on).
    MutexLock LockB(B);
    ASSERT_TRUE(A.try_lock());
    A.unlock();
  }
  SUCCEED();
}

#endif // MUTK_AUDIT_ENABLED
