//===- tests/graph_test.cpp - MST, compact sets, hierarchy ------*- C++ -*-===//

#include "graph/CompactSets.h"
#include "graph/Hierarchy.h"
#include "graph/Mst.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mutk;

namespace {

/// The worked example mirroring the PaCT paper's Figure 3: the MST edge
/// order is (0,2), (3,5), (0,1), (2,4), (4,5) and the compact sets are
/// {0,2}, {3,5}, {0,1,2}, {0,1,2,4}.
DistanceMatrix paperExample() {
  DistanceMatrix M(6);
  M.set(0, 1, 3);
  M.set(0, 2, 1);
  M.set(0, 3, 9);
  M.set(0, 4, 4.5);
  M.set(0, 5, 9);
  M.set(1, 2, 3.5);
  M.set(1, 3, 9);
  M.set(1, 4, 4.5);
  M.set(1, 5, 9);
  M.set(2, 3, 9);
  M.set(2, 4, 4);
  M.set(2, 5, 9);
  M.set(3, 4, 6);
  M.set(3, 5, 2);
  M.set(4, 5, 5);
  return M;
}

std::vector<std::vector<int>> memberLists(const std::vector<CompactSet> &Sets) {
  std::vector<std::vector<int>> Lists;
  for (const CompactSet &Set : Sets)
    Lists.push_back(Set.Members);
  std::sort(Lists.begin(), Lists.end());
  return Lists;
}

} // namespace

TEST(Mst, PaperExampleEdges) {
  std::vector<WeightedEdge> Tree = kruskalMst(paperExample());
  ASSERT_EQ(Tree.size(), 5u);
  EXPECT_EQ(Tree[0], (WeightedEdge{0, 2, 1}));
  EXPECT_EQ(Tree[1], (WeightedEdge{3, 5, 2}));
  EXPECT_EQ(Tree[2], (WeightedEdge{0, 1, 3}));
  EXPECT_EQ(Tree[3], (WeightedEdge{2, 4, 4}));
  EXPECT_EQ(Tree[4], (WeightedEdge{4, 5, 5}));
  EXPECT_TRUE(isSpanningTree(Tree, 6));
  EXPECT_DOUBLE_EQ(totalWeight(Tree), 15.0);
}

TEST(Mst, KruskalEqualsPrimWeight) {
  for (std::uint64_t Seed : {1u, 2u, 3u, 4u}) {
    DistanceMatrix M = uniformRandomMetric(25, Seed);
    auto K = kruskalMst(M);
    auto P = primMst(M);
    EXPECT_TRUE(isSpanningTree(K, 25));
    EXPECT_TRUE(isSpanningTree(P, 25));
    EXPECT_NEAR(totalWeight(K), totalWeight(P), 1e-9) << "seed " << Seed;
  }
}

TEST(Mst, TinyGraphs) {
  DistanceMatrix M1(1);
  EXPECT_TRUE(kruskalMst(M1).empty());
  EXPECT_TRUE(primMst(M1).empty());
  DistanceMatrix M2(2);
  M2.set(0, 1, 4);
  auto K = kruskalMst(M2);
  ASSERT_EQ(K.size(), 1u);
  EXPECT_EQ(K[0], (WeightedEdge{0, 1, 4}));
}

TEST(Mst, SpanningTreePredicateRejectsCycles) {
  std::vector<WeightedEdge> Bad = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  EXPECT_FALSE(isSpanningTree(Bad, 4)); // wrong count
  EXPECT_FALSE(isSpanningTree(Bad, 3)); // hmm: 3 edges for n=3 is wrong too
  std::vector<WeightedEdge> Disconnected = {{0, 1, 1}, {2, 3, 1}, {0, 1, 2}};
  EXPECT_FALSE(isSpanningTree(Disconnected, 4));
}

TEST(CompactSets, DefinitionPredicate) {
  DistanceMatrix M = paperExample();
  EXPECT_TRUE(isCompactSet(M, {0, 2}));
  EXPECT_TRUE(isCompactSet(M, {3, 5}));
  EXPECT_TRUE(isCompactSet(M, {0, 1, 2}));
  EXPECT_TRUE(isCompactSet(M, {0, 1, 2, 4}));
  EXPECT_FALSE(isCompactSet(M, {0, 1}));    // 2 is closer to 0 than 1 is
  EXPECT_FALSE(isCompactSet(M, {3, 4, 5})); // diameter 6 > outgoing 4
  // Conventions: singleton and whole set are compact.
  EXPECT_TRUE(isCompactSet(M, {2}));
  EXPECT_TRUE(isCompactSet(M, {0, 1, 2, 3, 4, 5}));
}

TEST(CompactSets, PaperExampleDetection) {
  std::vector<CompactSet> Sets = findCompactSets(paperExample());
  EXPECT_EQ(memberLists(Sets),
            (std::vector<std::vector<int>>{
                {0, 1, 2}, {0, 1, 2, 4}, {0, 2}, {3, 5}}));
  // Witness values for {0,1,2}: diameter 3.5, outgoing min 4.
  for (const CompactSet &Set : Sets)
    if (Set.Members == std::vector<int>{0, 1, 2}) {
      EXPECT_DOUBLE_EQ(Set.MaxInside, 3.5);
      EXPECT_DOUBLE_EQ(Set.MinOutgoing, 4.0);
    }
}

TEST(CompactSets, MatchesBruteForceOnRandomInputs) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(12, Seed, 0.2);
    auto Fast = memberLists(findCompactSets(M));
    auto Slow = memberLists(findCompactSetsBruteForce(M));
    EXPECT_EQ(Fast, Slow) << "seed " << Seed;
  }
}

TEST(CompactSets, MatchesBruteForceOnUniformInputs) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, Seed);
    EXPECT_EQ(memberLists(findCompactSets(M)),
              memberLists(findCompactSetsBruteForce(M)))
        << "seed " << Seed;
  }
}

TEST(CompactSets, UltrametricInputYieldsEverySubtree) {
  // In a strict ultrametric with distinct heights, every generating
  // subtree is compact: expect n - 2 proper nontrivial compact sets for
  // a binary hierarchy over n species (one per internal node except the
  // root).
  DistanceMatrix M = randomUltrametricMatrix(16, 5);
  auto Sets = findCompactSets(M);
  EXPECT_EQ(static_cast<int>(Sets.size()), 14);
  EXPECT_TRUE(isLaminarFamily(Sets));
}

TEST(CompactSets, DetectionIsLaminar) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    auto Sets = findCompactSets(plantedClusterMetric(30, Seed));
    EXPECT_TRUE(isLaminarFamily(Sets)) << "seed " << Seed;
    for (const CompactSet &Set : Sets) {
      EXPECT_GE(Set.size(), 2);
      EXPECT_LT(Set.size(), 30);
      EXPECT_LT(Set.MaxInside, Set.MinOutgoing);
    }
  }
}

TEST(CompactSets, TinyInputsHaveNone) {
  DistanceMatrix M2(2);
  M2.set(0, 1, 1);
  EXPECT_TRUE(findCompactSets(M2).empty());
  DistanceMatrix M1(1);
  EXPECT_TRUE(findCompactSets(M1).empty());
}

TEST(CompactSets, TiesExcludeBoundary) {
  // Equilateral square: every pair at distance 1 except one pair at 1.
  DistanceMatrix M(4);
  for (int I = 0; I < 4; ++I)
    for (int J = I + 1; J < 4; ++J)
      M.set(I, J, 1.0);
  // Max inside any subset == min outgoing == 1: strictness fails.
  EXPECT_TRUE(findCompactSets(M).empty());
  EXPECT_TRUE(findCompactSetsBruteForce(M).empty());
}

TEST(Hierarchy, PaperExampleStructure) {
  DistanceMatrix M = paperExample();
  CompactHierarchy H(6, findCompactSets(M));

  const auto &Root = H.node(H.rootId());
  EXPECT_EQ(Root.Species.size(), 6u);
  // Root splits into {0,1,2,4} and {3,5}.
  ASSERT_EQ(Root.Children.size(), 2u);
  std::vector<std::vector<int>> RootBlocks = H.partitionAt(H.rootId());
  std::sort(RootBlocks.begin(), RootBlocks.end());
  EXPECT_EQ(RootBlocks, (std::vector<std::vector<int>>{{0, 1, 2, 4}, {3, 5}}));

  // {0,1,2,4} splits into {0,1,2} and {4}; {0,1,2} into {0,2} and {1}.
  EXPECT_EQ(H.maxPartitionSize(), 2);
}

TEST(Hierarchy, SingletonLeavesCoverEverything) {
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(18, Seed);
    CompactHierarchy H(18, findCompactSets(M));
    for (int Id : H.internalNodesTopDown()) {
      auto Blocks = H.partitionAt(Id);
      EXPECT_GE(Blocks.size(), 2u);
      // Blocks partition the node's species.
      std::vector<int> Union;
      for (auto &B : Blocks)
        Union.insert(Union.end(), B.begin(), B.end());
      std::sort(Union.begin(), Union.end());
      EXPECT_EQ(Union, H.node(Id).Species);
    }
  }
}

TEST(Hierarchy, NoCompactSetsGivesFlatRoot) {
  CompactHierarchy H(5, {});
  EXPECT_EQ(H.numNodes(), 6); // root + 5 singletons
  EXPECT_EQ(H.partitionAt(H.rootId()).size(), 5u);
  EXPECT_EQ(H.internalNodesTopDown(), std::vector<int>{0});
}

TEST(Hierarchy, DeepNesting) {
  // Chain of nested compact sets {0,1} c {0,1,2} c {0,1,2,3}.
  std::vector<CompactSet> Sets(3);
  Sets[0].Members = {0, 1};
  Sets[1].Members = {0, 1, 2};
  Sets[2].Members = {0, 1, 2, 3};
  CompactHierarchy H(5, Sets);
  // Root {0..4} -> {0,1,2,3} + {4}; {0,1,2,3} -> {0,1,2} + {3}; etc.
  int Depth = 0;
  int Id = H.rootId();
  while (!H.node(Id).isSingleton()) {
    auto &Children = H.node(Id).Children;
    EXPECT_EQ(Children.size(), 2u);
    int NonSingleton = -1;
    for (int C : Children)
      if (!H.node(C).isSingleton())
        NonSingleton = C;
    if (NonSingleton < 0)
      break;
    Id = NonSingleton;
    ++Depth;
  }
  EXPECT_EQ(Depth, 3);
}

// Property: detection equals brute force across sizes on mixed inputs.
class CompactProperty : public testing::TestWithParam<int> {};

TEST_P(CompactProperty, FastEqualsBruteForce) {
  int N = GetParam();
  for (std::uint64_t Seed = 100; Seed < 103; ++Seed) {
    DistanceMatrix Clustered = plantedClusterMetric(N, Seed, 0.25);
    EXPECT_EQ(memberLists(findCompactSets(Clustered)),
              memberLists(findCompactSetsBruteForce(Clustered)));
    DistanceMatrix Uniform = uniformRandomMetric(N, Seed);
    EXPECT_EQ(memberLists(findCompactSets(Uniform)),
              memberLists(findCompactSetsBruteForce(Uniform)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactProperty,
                         testing::Values(3, 4, 5, 6, 8, 10, 13));
