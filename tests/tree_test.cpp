//===- tests/tree_test.cpp - PhyloTree, fit, Newick, RF ---------*- C++ -*-===//

#include "matrix/Generators.h"
#include "tree/Newick.h"
#include "tree/PhyloTree.h"
#include "tree/RobinsonFoulds.h"
#include "tree/UltrametricFit.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

/// ((0,1)@h1, (2,3)@h2)@h3 as a PhyloTree.
PhyloTree twoCherries(double H1, double H2, double H3) {
  PhyloTree T;
  int L0 = T.addLeaf(0);
  int L1 = T.addLeaf(1);
  int A = T.addInternal(L0, L1, H1);
  int L2 = T.addLeaf(2);
  int L3 = T.addLeaf(3);
  int B = T.addInternal(L2, L3, H2);
  T.addInternal(A, B, H3);
  return T;
}

} // namespace

TEST(PhyloTree, SingleLeaf) {
  PhyloTree T;
  T.addLeaf(0);
  EXPECT_EQ(T.numLeaves(), 1);
  EXPECT_EQ(T.weight(), 0.0);
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_TRUE(T.hasMonotoneHeights());
}

TEST(PhyloTree, CherryWeightAndDistance) {
  PhyloTree T;
  int A = T.addLeaf(0);
  int B = T.addLeaf(1);
  T.addInternal(A, B, 2.5);
  EXPECT_DOUBLE_EQ(T.weight(), 5.0); // two edges of length 2.5
  EXPECT_DOUBLE_EQ(T.leafDistance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(T.rootHeight(), 2.5);
}

TEST(PhyloTree, TwoCherriesStructure) {
  PhyloTree T = twoCherries(1, 2, 5);
  EXPECT_EQ(T.numLeaves(), 4);
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_TRUE(T.hasMonotoneHeights());
  // w = h(root) + sum internal = 5 + (1 + 2 + 5) = 13.
  EXPECT_DOUBLE_EQ(T.weight(), 13.0);
  EXPECT_DOUBLE_EQ(T.leafDistance(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(T.leafDistance(2, 3), 4.0);
  EXPECT_DOUBLE_EQ(T.leafDistance(0, 3), 10.0);
}

TEST(PhyloTree, LcaAndLeaves) {
  PhyloTree T = twoCherries(1, 2, 5);
  int Lca01 = T.lcaOfSpecies(0, 1);
  EXPECT_DOUBLE_EQ(T.node(Lca01).Height, 1.0);
  int Lca03 = T.lcaOfSpecies(0, 3);
  EXPECT_EQ(Lca03, T.root());
  EXPECT_EQ(T.leavesBelow(T.root()).size(), 4u);
  EXPECT_EQ(T.allSpecies(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(PhyloTree, EdgeWeights) {
  PhyloTree T = twoCherries(1, 2, 5);
  EXPECT_DOUBLE_EQ(T.edgeWeightAbove(T.root()), 0.0);
  int Cherry01 = T.lcaOfSpecies(0, 1);
  EXPECT_DOUBLE_EQ(T.edgeWeightAbove(Cherry01), 4.0);
  EXPECT_DOUBLE_EQ(T.edgeWeightAbove(T.leafNodeOf(3)), 2.0);
}

TEST(PhyloTree, InducedMatrixIsUltrametric) {
  PhyloTree T = twoCherries(1, 2, 5);
  DistanceMatrix M = T.inducedMatrix();
  EXPECT_EQ(M.size(), 4);
  EXPECT_DOUBLE_EQ(M.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 10.0);
}

TEST(PhyloTree, DominatesMatrix) {
  PhyloTree T = twoCherries(1, 2, 5);
  DistanceMatrix M = T.inducedMatrix();
  EXPECT_TRUE(T.dominatesMatrix(M));
  M.set(0, 1, 2.1); // now the tree is too short for this pair
  EXPECT_FALSE(T.dominatesMatrix(M));
}

TEST(PhyloTree, NonMonotoneHeightsDetected) {
  PhyloTree T;
  int A = T.addLeaf(0);
  int B = T.addLeaf(1);
  int C = T.addInternal(A, B, 5.0);
  int D = T.addLeaf(2);
  T.addInternal(C, D, 3.0); // parent below child
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_FALSE(T.hasMonotoneHeights());
}

TEST(PhyloTree, ReplaceLeafWithSubtree) {
  PhyloTree T = twoCherries(1, 2, 5);
  // Replace species 3 with a small cherry over species 3 and 4.
  PhyloTree Sub;
  int X = Sub.addLeaf(0);
  int Y = Sub.addLeaf(1);
  Sub.addInternal(X, Y, 0.5);
  int Raised = T.replaceLeafWithSubtree(3, Sub, {3, 4});
  EXPECT_EQ(Raised, 0); // 0.5 < 2, no clamping needed
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_TRUE(T.hasMonotoneHeights());
  EXPECT_EQ(T.numLeaves(), 5);
  EXPECT_DOUBLE_EQ(T.leafDistance(3, 4), 1.0);
  // Leaves sit at height 0; their LCA is the old cherry node at height 2.
  EXPECT_DOUBLE_EQ(T.leafDistance(2, 4), 4.0);
}

TEST(PhyloTree, ReplaceLeafClampsWhenSubtreeTooTall) {
  PhyloTree T = twoCherries(1, 2, 5);
  PhyloTree Sub;
  int X = Sub.addLeaf(0);
  int Y = Sub.addLeaf(1);
  Sub.addInternal(X, Y, 3.0); // taller than the 2.0 parent
  int Raised = T.replaceLeafWithSubtree(3, Sub, {3, 4});
  EXPECT_EQ(Raised, 1);
  EXPECT_TRUE(T.hasMonotoneHeights());
}

TEST(PhyloTree, AdoptSubtreeRemapsSpecies) {
  PhyloTree T;
  PhyloTree Sub = twoCherries(1, 2, 5);
  int Root = T.adoptSubtree(Sub, {10, 11, 12, 13});
  T.setRoot(Root);
  EXPECT_EQ(T.allSpecies(), (std::vector<int>{10, 11, 12, 13}));
  EXPECT_DOUBLE_EQ(T.weight(), Sub.weight());
}

TEST(UltrametricFit, RecoversMinimalHeights) {
  // Fixed topology ((0,1),(2,3)); matrix forces specific heights.
  PhyloTree T = twoCherries(0, 0, 0);
  DistanceMatrix M(4);
  M.set(0, 1, 2);
  M.set(2, 3, 6);
  M.set(0, 2, 10);
  M.set(0, 3, 8);
  M.set(1, 2, 4);
  M.set(1, 3, 8);
  double W = fitMinimalHeights(T, M);
  // h(01) = 1, h(23) = 3, h(root) = max(10, 8, 4, 8)/2 = 5.
  EXPECT_DOUBLE_EQ(W, 5 + (1 + 3 + 5));
  EXPECT_TRUE(T.dominatesMatrix(M));
  EXPECT_TRUE(T.hasMonotoneHeights());
  EXPECT_DOUBLE_EQ(minimalWeightFor(T, M), W);
}

TEST(UltrametricFit, ChildHeightPropagatesUp) {
  // Cross-pair maxima smaller than a child height: the parent must still
  // sit above the child.
  PhyloTree T;
  int A = T.addLeaf(0);
  int B = T.addLeaf(1);
  int AB = T.addInternal(A, B, 0);
  int C = T.addLeaf(2);
  T.addInternal(AB, C, 0);
  DistanceMatrix M(3);
  M.set(0, 1, 10); // deep cherry
  M.set(0, 2, 4);
  M.set(1, 2, 4);
  fitMinimalHeights(T, M);
  EXPECT_DOUBLE_EQ(T.node(T.lcaOfSpecies(0, 1)).Height, 5.0);
  EXPECT_DOUBLE_EQ(T.node(T.root()).Height, 5.0); // lifted to child height
  EXPECT_TRUE(T.dominatesMatrix(M));
}

TEST(Newick, WriteKnownTree) {
  PhyloTree T = twoCherries(1, 2, 5);
  EXPECT_EQ(toNewick(T), "((s0:1,s1:1):4,(s2:2,s3:2):3);");
}

TEST(Newick, WriteUsesNames) {
  PhyloTree T;
  int A = T.addLeaf(0);
  int B = T.addLeaf(1);
  T.addInternal(A, B, 1.5);
  T.setNames({"human", "chimp"});
  EXPECT_EQ(toNewick(T), "(human:1.5,chimp:1.5);");
}

TEST(Newick, ParseRoundTrip) {
  PhyloTree T = twoCherries(1.5, 2.25, 5.125);
  std::string Text = toNewick(T);
  auto Back = parseNewick(Text);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(toNewick(*Back), Text);
  EXPECT_DOUBLE_EQ(Back->weight(), T.weight());
  EXPECT_TRUE(Back->hasMonotoneHeights());
}

TEST(Newick, ParseAssignsSpeciesInAppearanceOrder) {
  auto T = parseNewick("((a:1,b:1):2,c:3);");
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->speciesName(0), "a");
  EXPECT_EQ(T->speciesName(2), "c");
  EXPECT_DOUBLE_EQ(T->leafDistance(0, 2), 6.0);
}

TEST(Newick, ParseRejectsMalformed) {
  std::string Error;
  EXPECT_FALSE(parseNewick("((a,b)", &Error).has_value());
  EXPECT_FALSE(parseNewick("(a,b,c);", &Error).has_value()); // polytomy
  EXPECT_FALSE(parseNewick("", &Error).has_value());
  EXPECT_FALSE(parseNewick("(a,b)", &Error).has_value()); // missing ';'
}

TEST(Newick, FuzzedInputNeverCrashes) {
  // Random garbage must come back as nullopt or a well-formed tree,
  // never crash or hang.
  const char Alphabet[] = "(),:;ab1.- \t";
  std::uint64_t State = 0xABCDEF;
  auto NextChar = [&] {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return Alphabet[(State >> 33) % (sizeof(Alphabet) - 1)];
  };
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::string Input;
    int Length = static_cast<int>((State >> 20) % 40);
    for (int I = 0; I < Length; ++I)
      Input.push_back(NextChar());
    auto T = parseNewick(Input);
    if (T.has_value())
      EXPECT_TRUE(T->isWellFormed()) << "input: " << Input;
  }
}

TEST(Newick, ParseToleratesWhitespace) {
  auto T = parseNewick(" ( a : 1 , b : 1 ) ; ");
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->numLeaves(), 2);
}

TEST(RobinsonFoulds, IdenticalTreesAreZero) {
  PhyloTree T = twoCherries(1, 2, 5);
  EXPECT_EQ(rfDistance(T, T), 0);
  EXPECT_DOUBLE_EQ(normalizedRfDistance(T, T), 0.0);
}

TEST(RobinsonFoulds, DifferentCherriesCounted) {
  PhyloTree A = twoCherries(1, 2, 5); // clades {0,1}, {2,3}
  PhyloTree B;                        // clades {0,2}, {1,3}
  int L0 = B.addLeaf(0);
  int L2 = B.addLeaf(2);
  int X = B.addInternal(L0, L2, 1);
  int L1 = B.addLeaf(1);
  int L3 = B.addLeaf(3);
  int Y = B.addInternal(L1, L3, 1);
  B.addInternal(X, Y, 2);
  EXPECT_EQ(rfDistance(A, B), 4);
  EXPECT_DOUBLE_EQ(normalizedRfDistance(A, B), 1.0);
}

TEST(RobinsonFoulds, CaterpillarVsBalanced) {
  // Caterpillar (((0,1),2),3) vs balanced ((0,1),(2,3)): share {0,1}.
  PhyloTree A;
  int L0 = A.addLeaf(0);
  int L1 = A.addLeaf(1);
  int X = A.addInternal(L0, L1, 1);
  int L2 = A.addLeaf(2);
  int Y = A.addInternal(X, L2, 2);
  int L3 = A.addLeaf(3);
  A.addInternal(Y, L3, 3);
  PhyloTree B = twoCherries(1, 1, 3);
  // A's clades: {0,1}, {0,1,2}; B's: {0,1}, {2,3} -> difference 2.
  EXPECT_EQ(rfDistance(A, B), 2);
}

TEST(RobinsonFoulds, CladeExtraction) {
  PhyloTree T = twoCherries(1, 2, 5);
  auto Clades = nontrivialClades(T);
  EXPECT_EQ(Clades.size(), 2u);
  EXPECT_TRUE(Clades.count({0, 1}));
  EXPECT_TRUE(Clades.count({2, 3}));
}

// Property: a tree reconstructed from its own induced matrix by fitting
// heights onto the same topology keeps the same weight.
class FitProperty : public testing::TestWithParam<int> {};

TEST_P(FitProperty, FitOnInducedMatrixIsIdempotent) {
  DistanceMatrix M = randomUltrametricMatrix(GetParam(), 77);
  // Build some topology from the matrix itself via a fresh ultrametric
  // tree: use the generating structure through UltrametricFit on a
  // caterpillar; the fitted tree must dominate M.
  PhyloTree T;
  int Acc = T.addLeaf(0);
  for (int I = 1; I < GetParam(); ++I) {
    int L = T.addLeaf(I);
    Acc = T.addInternal(Acc, L, 0);
  }
  double W = fitMinimalHeights(T, M);
  EXPECT_TRUE(T.dominatesMatrix(M));
  EXPECT_TRUE(T.hasMonotoneHeights());
  EXPECT_GT(W, 0.0);
  // Refitting changes nothing.
  PhyloTree Copy = T;
  EXPECT_DOUBLE_EQ(fitMinimalHeights(Copy, M), W);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FitProperty,
                         testing::Values(2, 4, 6, 9, 14, 20));
