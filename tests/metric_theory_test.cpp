//===- tests/metric_theory_test.cpp - Subdominant & four-point --*- C++ -*-===//

#include "graph/Subdominant.h"
#include "heur/Upgma.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "seq/EvolutionSim.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(Subdominant, FixesUltrametricInput) {
  DistanceMatrix M = randomUltrametricMatrix(14, 3);
  DistanceMatrix U = subdominantUltrametric(M);
  EXPECT_TRUE(M.approxEquals(U, 1e-9));
  EXPECT_TRUE(isUltrametricFast(M));
  EXPECT_NEAR(subdominantGap(M), 0.0, 1e-9);
}

TEST(Subdominant, LiesBelowTheInputAndIsUltrametric) {
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(15, Seed);
    DistanceMatrix U = subdominantUltrametric(M);
    for (int I = 0; I < 15; ++I)
      for (int J = I + 1; J < 15; ++J)
        EXPECT_LE(U.at(I, J), M.at(I, J) + 1e-12);
    EXPECT_TRUE(isUltrametric(U)) << "seed " << Seed;
    EXPECT_GT(subdominantGap(M), 0.0);
    EXPECT_FALSE(isUltrametricFast(M));
  }
}

TEST(Subdominant, IsTheLargestUltrametricBelow) {
  // Any ultrametric V <= M must lie below the subdominant U. Use the
  // single-linkage tree metric as a candidate V: it must equal U.
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    DistanceMatrix U = subdominantUltrametric(M);
    DistanceMatrix SingleLinkage =
        buildLinkageTree(M, Linkage::Minimum).inducedMatrix();
    EXPECT_TRUE(U.approxEquals(SingleLinkage, 1e-9)) << "seed " << Seed;
  }
}

TEST(Subdominant, FastRecognitionMatchesTripleCheck) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    for (const DistanceMatrix &M :
         {uniformRandomMetric(13, Seed), randomUltrametricMatrix(13, Seed),
          plantedClusterMetric(13, Seed), hmdnaLikeMatrix(10, Seed)}) {
      EXPECT_EQ(isUltrametricFast(M), isUltrametric(M)) << "seed " << Seed;
    }
  }
}

TEST(Subdominant, TinySizes) {
  EXPECT_EQ(subdominantUltrametric(DistanceMatrix(1)).size(), 1);
  DistanceMatrix M2(2);
  M2.set(0, 1, 7);
  DistanceMatrix U = subdominantUltrametric(M2);
  EXPECT_DOUBLE_EQ(U.at(0, 1), 7.0);
  EXPECT_TRUE(isUltrametricFast(M2));
}

TEST(FourPoint, UltrametricsAreAdditive) {
  DistanceMatrix M = randomUltrametricMatrix(10, 5);
  EXPECT_TRUE(isAdditive(M));
}

TEST(FourPoint, TreeMetricsAreAdditive) {
  // Any tree realizes an additive metric; use a true evolution tree.
  EvolutionResult R = simulateEvolution(9, 7);
  DistanceMatrix M = R.TrueTree.inducedMatrix();
  EXPECT_TRUE(isAdditive(M, 1e-6));
}

TEST(FourPoint, UniformRandomIsNotAdditive) {
  int Violations = 0;
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed)
    if (!isAdditive(uniformRandomMetric(10, Seed)))
      ++Violations;
  EXPECT_EQ(Violations, 5);
}

TEST(FourPoint, ViolationIsReported) {
  // A square: d = 1 on edges, 1 on diagonals violates four points?
  // Use the classic non-additive example: unit 4-cycle distances.
  DistanceMatrix M(4);
  M.set(0, 1, 1);
  M.set(1, 2, 1);
  M.set(2, 3, 1);
  M.set(0, 3, 1);
  M.set(0, 2, 2);
  M.set(1, 3, 2);
  // Sums: d01+d23 = 2, d02+d13 = 4, d03+d12 = 2: the two largest are
  // 4 and 2 -> violated.
  auto V = findFourPointViolation(M);
  ASSERT_TRUE(V.has_value());
  EXPECT_NEAR(V->Slack, 2.0, 1e-12);
  EXPECT_FALSE(isAdditive(M));
}

TEST(FourPoint, FewerThanFourSpeciesTriviallyAdditive) {
  EXPECT_TRUE(isAdditive(DistanceMatrix(3)));
  EXPECT_TRUE(isAdditive(DistanceMatrix(0)));
}
