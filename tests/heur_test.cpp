//===- tests/heur_test.cpp - UPGMA family & neighbor joining ----*- C++ -*-===//

#include "heur/NeighborJoining.h"
#include "heur/Upgma.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "tree/RobinsonFoulds.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(Upgma, SingleSpecies) {
  DistanceMatrix M(1);
  PhyloTree T = upgma(M);
  EXPECT_EQ(T.numLeaves(), 1);
  EXPECT_EQ(T.weight(), 0.0);
}

TEST(Upgma, TwoSpecies) {
  DistanceMatrix M(2);
  M.set(0, 1, 6);
  PhyloTree T = upgmm(M);
  EXPECT_DOUBLE_EQ(T.weight(), 6.0);
  EXPECT_DOUBLE_EQ(T.leafDistance(0, 1), 6.0);
}

TEST(Upgma, RecoverUltrametricExactly) {
  // On an exact ultrametric input, all three linkages coincide and the
  // tree realizes the matrix exactly.
  DistanceMatrix M = randomUltrametricMatrix(12, 4);
  for (Linkage Mode :
       {Linkage::Average, Linkage::Maximum, Linkage::Minimum}) {
    PhyloTree T = buildLinkageTree(M, Mode);
    EXPECT_TRUE(T.isWellFormed());
    EXPECT_TRUE(T.hasMonotoneHeights());
    EXPECT_TRUE(T.inducedMatrix().approxEquals(M, 1e-9));
  }
}

TEST(Upgma, UpgmmIsAlwaysFeasible) {
  // Complete linkage guarantees d_T >= M: the Algorithm-BBU upper bound
  // property. Average linkage does not.
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(14, Seed);
    PhyloTree T = upgmm(M);
    EXPECT_TRUE(T.dominatesMatrix(M)) << "seed " << Seed;
    EXPECT_TRUE(T.hasMonotoneHeights()) << "seed " << Seed;
  }
}

TEST(Upgma, UpgmaCanBeInfeasible) {
  // Find at least one uniform instance where UPGMA underestimates a pair.
  bool FoundInfeasible = false;
  for (std::uint64_t Seed = 0; Seed < 20 && !FoundInfeasible; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    FoundInfeasible = !upgma(M).dominatesMatrix(M);
  }
  EXPECT_TRUE(FoundInfeasible);
}

TEST(Upgma, SingleLinkageIsSmallest) {
  // min linkage <= avg linkage <= max linkage in tree weight.
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(13, Seed);
    double Min = buildLinkageTree(M, Linkage::Minimum).weight();
    double Avg = buildLinkageTree(M, Linkage::Average).weight();
    double Max = buildLinkageTree(M, Linkage::Maximum).weight();
    EXPECT_LE(Min, Avg + 1e-9);
    EXPECT_LE(Avg, Max + 1e-9);
  }
}

TEST(Upgma, NamesPropagate) {
  DistanceMatrix M(3);
  M.setName(0, "human");
  M.set(0, 1, 2);
  M.set(0, 2, 4);
  M.set(1, 2, 4);
  PhyloTree T = upgmm(M);
  EXPECT_EQ(T.speciesName(0), "human");
}

TEST(Upgma, UpperBoundMatchesTreeWeight) {
  DistanceMatrix M = uniformRandomMetric(10, 77);
  EXPECT_DOUBLE_EQ(upgmmUpperBound(M), upgmm(M).weight());
}

TEST(NeighborJoining, TwoAndThreeSpecies) {
  DistanceMatrix M2(2);
  M2.set(0, 1, 5);
  AdditiveTree T2 = neighborJoining(M2);
  EXPECT_DOUBLE_EQ(T2.leafDistance(0, 1), 5.0);

  DistanceMatrix M3(3);
  M3.set(0, 1, 4);
  M3.set(0, 2, 6);
  M3.set(1, 2, 8);
  AdditiveTree T3 = neighborJoining(M3);
  EXPECT_NEAR(T3.leafDistance(0, 1), 4.0, 1e-9);
  EXPECT_NEAR(T3.leafDistance(0, 2), 6.0, 1e-9);
  EXPECT_NEAR(T3.leafDistance(1, 2), 8.0, 1e-9);
}

TEST(NeighborJoining, RecoversAdditiveMatrixExactly) {
  // NJ is exact on additive inputs; tree metrics from ultrametric trees
  // are additive, so the induced matrix must round-trip.
  for (std::uint64_t Seed : {3u, 9u, 27u}) {
    DistanceMatrix M = randomUltrametricMatrix(10, Seed);
    AdditiveTree T = neighborJoining(M);
    DistanceMatrix Back = T.inducedMatrix();
    EXPECT_TRUE(M.approxEquals(Back, 1e-6)) << "seed " << Seed;
  }
}

TEST(NeighborJoining, NewickMentionsAllSpecies) {
  DistanceMatrix M = uniformRandomMetric(6, 5);
  M.setName(3, "gibbon");
  AdditiveTree T = neighborJoining(M);
  std::string Text = T.toNewick();
  EXPECT_NE(Text.find("gibbon"), std::string::npos);
  EXPECT_NE(Text.find("s0"), std::string::npos);
  EXPECT_EQ(Text.back(), ';');
}

// Property: UPGMM feasibility holds across workload families and sizes.
class UpgmmProperty : public testing::TestWithParam<int> {};

TEST_P(UpgmmProperty, FeasibleOnAllWorkloads) {
  int N = GetParam();
  for (std::uint64_t Seed = 40; Seed < 43; ++Seed) {
    for (const DistanceMatrix &M :
         {uniformRandomMetric(N, Seed), plantedClusterMetric(N, Seed),
          randomUltrametricMatrix(N, Seed)}) {
      PhyloTree T = upgmm(M);
      EXPECT_TRUE(T.dominatesMatrix(M));
      EXPECT_TRUE(T.isWellFormed());
      EXPECT_TRUE(T.hasMonotoneHeights());
      EXPECT_EQ(T.numLeaves(), N);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UpgmmProperty,
                         testing::Values(2, 3, 4, 7, 12, 20, 33));
