//===- tests/misc_coverage_test.cpp - Odds and ends -------------*- C++ -*-===//

#include "heur/NeighborJoining.h"
#include "matrix/Condense.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "redist/Baselines.h"
#include "redist/Scpa.h"
#include "seq/EvolutionSim.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

using namespace mutk;

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double First = W.seconds();
  EXPECT_GT(First, 0.0);
  EXPECT_GE(W.milliseconds(), First * 1e3 - 1.0);
  W.restart();
  EXPECT_LT(W.seconds(), First);
}

TEST(GenBlockEdge, ZeroSizeSegmentsAreSkipped) {
  GenBlock Source{{5, 0, 5}};
  GenBlock Dest{{3, 7, 0}};
  auto Messages = generateMessages(Source, Dest);
  // SP1 owns nothing and DP2 receives nothing: no message touches them.
  for (const RedistMessage &M : Messages) {
    EXPECT_NE(M.Source, 1);
    EXPECT_NE(M.Dest, 2);
    EXPECT_GT(M.Size, 0);
  }
  long Total = 0;
  for (const RedistMessage &M : Messages)
    Total += M.Size;
  EXPECT_EQ(Total, 10);
}

TEST(GenBlockEdge, SingleProcessorIsOneMessage) {
  GenBlock One{{42}};
  auto Messages = generateMessages(One, One);
  ASSERT_EQ(Messages.size(), 1u);
  EXPECT_EQ(Messages[0], (RedistMessage{0, 0, 42}));
}

TEST(ScheduleCost, StartupTermCountsSteps) {
  GenBlock S{{6, 6}};
  GenBlock D{{4, 8}};
  auto Messages = generateMessages(S, D);
  RedistSchedule Schedule = scheduleScpa(Messages, 2);
  double NoStartup = Schedule.cost(Messages, 0.0);
  double WithStartup = Schedule.cost(Messages, 10.0);
  EXPECT_DOUBLE_EQ(WithStartup - NoStartup, 10.0 * Schedule.numSteps());
}

TEST(CondenseEdge, SingleBlockYieldsOneByOne) {
  DistanceMatrix M = uniformRandomMetric(5, 1);
  DistanceMatrix C = condense(M, {{0, 1, 2, 3, 4}}, CondenseMode::Maximum);
  EXPECT_EQ(C.size(), 1);
}

TEST(MaxminEdge, AllEqualDistancesGiveDeterministicPermutation) {
  DistanceMatrix M(5);
  for (int I = 0; I < 5; ++I)
    for (int J = I + 1; J < 5; ++J)
      M.set(I, J, 3.0);
  std::vector<int> First = maxminPermutation(M);
  EXPECT_EQ(First, maxminPermutation(M));
  EXPECT_TRUE(isMaxminPermutation(M, First));
  // Smallest-index tie-breaks: the identity ordering.
  EXPECT_EQ(First, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EvolutionEdge, HeavyIndelsStillYieldMetricMatrix) {
  EvolutionSpec Spec;
  Spec.IndelRate = 0.05; // ~12 expected indel events per unit branch
  Spec.SequenceLength = 120;
  DistanceMatrix M = hmdnaLikeMatrix(8, 4, Spec);
  EXPECT_TRUE(isMetric(M));
  // Lineages must not collapse to empty sequences.
  EvolutionResult R = simulateEvolution(8, 4, Spec);
  for (const std::string &S : R.Sequences)
    EXPECT_FALSE(S.empty());
}

TEST(NeighborJoiningEdge, NewickOfTwoSpecies) {
  DistanceMatrix M(2);
  M.set(0, 1, 3);
  AdditiveTree T = neighborJoining(M);
  std::string Text = T.toNewick();
  EXPECT_EQ(Text.back(), ';');
  EXPECT_NE(Text.find("s0"), std::string::npos);
}

TEST(UnionScheduleEdge, EmptyMessageListIsEmptySchedule) {
  std::vector<RedistMessage> None;
  EXPECT_EQ(scheduleScpa(None, 4).numSteps(), 0);
  EXPECT_EQ(scheduleGreedyFfd(None, 4).numSteps(), 0);
  EXPECT_EQ(scheduleDivideConquer(None, 4).numSteps(), 0);
  EXPECT_TRUE(isValidSchedule(RedistSchedule{}, None, 4));
}
