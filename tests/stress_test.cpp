//===- tests/stress_test.cpp - Concurrency stress for the sanitizers ------===//
//
// Race-hunting workloads for `ctest -L tsan` (ThreadSanitizer preset)
// that also run under the ASan `service` label: an oversubscribed
// ThreadedBnb on tie-heavy matrices, hit/insert/evict storms on the
// sharded result cache, eviction racing lookups on a single shard,
// in-flight deadline expiry and shutdown in the loopback service, and
// producer/consumer/close races on the bounded job queue.
//
// These tests assert *functional* outcomes (every future resolves, costs
// match the sequential solver, counters add up); the sanitizers assert
// the absence of races and lock-order inversions on top. Thread counts
// deliberately exceed the core count — on a small CI box that is what
// forces preemption inside critical sections.
//
//===----------------------------------------------------------------------===//

#include "matrix/Generators.h"
#include "parallel/ThreadedBnb.h"
#include "service/JobQueue.h"
#include "service/ResultCache.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

using namespace mutk;

namespace {

/// A metric whose distances all lie in [99, 100]: every triangle holds
/// trivially, ties abound, and the lower bound prunes poorly — the
/// adversarial workload for bound-sharing between workers.
DistanceMatrix narrowBandMatrix(int N, std::uint64_t Seed) {
  DistanceMatrix M(N);
  std::uint64_t State = Seed * 0x9e3779b97f4a7c15ull + 1;
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J) {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      double Unit = static_cast<double>(State >> 11) /
                    static_cast<double>(1ull << 53);
      M.set(I, J, 99.0 + Unit);
    }
  return M;
}

/// A small solved tree so cached values own a little heap memory (gives
/// ASan/TSan an object graph to chase through the cache).
CachedSolution makeSolution(std::uint64_t Key) {
  CachedSolution S;
  int A = S.Tree.addLeaf(0);
  int B = S.Tree.addLeaf(1);
  S.Tree.setRoot(S.Tree.addInternal(A, B, 1.0 + static_cast<double>(Key % 7)));
  S.Cost = static_cast<double>(Key);
  S.Bytes = {static_cast<std::uint8_t>(Key), static_cast<std::uint8_t>(Key >> 8)};
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadedBnb under oversubscription
//===----------------------------------------------------------------------===//

// Far more workers than cores on a tie-heavy matrix: the shared upper
// bound is updated constantly while the global pool drains and refills,
// and the termination handshake must still get every worker home.
TEST(StressThreadedBnb, OversubscribedTieHeavyMatchesSequential) {
  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DistanceMatrix M = narrowBandMatrix(8, Seed);
    double Sequential = solveMutSequential(M).Cost;
    ParallelMutResult R = solveMutThreaded(M, 16);
    EXPECT_TRUE(R.Stats.Complete);
    EXPECT_NEAR(Sequential, R.Cost, 1e-9) << "seed " << Seed;
  }
}

// Random metrics prune well, so workers go idle and re-steal from the
// global pool repeatedly — the donate/pull path under contention.
TEST(StressThreadedBnb, RepeatedOversubscribedRandomSolves) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    double Sequential = solveMutSequential(M).Cost;
    ParallelMutResult R = solveMutThreaded(M, 12);
    EXPECT_TRUE(R.Stats.Complete);
    EXPECT_NEAR(Sequential, R.Cost, 1e-9) << "seed " << Seed;
  }
}

// Mid-flight cancellation: the node budget trips while all workers are
// busy, so the Cancelled flag must propagate through the pool wait.
TEST(StressThreadedBnb, BudgetCancellationUnderOversubscription) {
  DistanceMatrix M = narrowBandMatrix(12, 7);
  BnbOptions Options;
  Options.MaxBranchedNodes = 200;
  ParallelMutResult R = solveMutThreaded(M, 16, Options);
  EXPECT_FALSE(R.Stats.Complete);
  // Even a truncated run must answer with a feasible tree.
  EXPECT_TRUE(R.Tree.isWellFormed());
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

//===----------------------------------------------------------------------===//
// ShardedLruCache storms
//===----------------------------------------------------------------------===//

// Many threads hammer a tiny cache with overlapping key ranges: every
// operation mixes hits, misses, inserts and evictions across shards.
TEST(StressResultCache, HitInsertEvictStorm) {
  ShardedLruCache Cache(16, 4);
  constexpr int NumThreads = 8;
  constexpr int OpsPerThread = 2000;
  std::atomic<std::uint64_t> ObservedHits{0};

  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T, &Cache, &ObservedHits] {
      for (int Op = 0; Op < OpsPerThread; ++Op) {
        // 32 distinct keys over a 16-entry cache: ~half the working set
        // is always one eviction away.
        std::uint64_t Key =
            static_cast<std::uint64_t>((Op * 7 + T * 13) % 32);
        CachedSolution S = makeSolution(Key);
        if (std::optional<CachedSolution> Hit = Cache.lookup(Key, S.Bytes)) {
          ObservedHits.fetch_add(1, std::memory_order_relaxed);
          EXPECT_DOUBLE_EQ(static_cast<double>(Key), Hit->Cost);
        } else {
          Cache.store(Key, std::move(S));
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(ObservedHits.load(), Cache.hits());
  EXPECT_LE(Cache.size(), 16u);
  EXPECT_GT(Cache.evictions(), 0u);
}

// Eviction racing lookups on the *same shard*: one shard, capacity two,
// so nearly every store evicts what another thread is about to look up.
// (Runs under both the ASan `service` label and the TSan `tsan` label.)
TEST(StressResultCache, EvictionRacesLookupOnOneShard) {
  ShardedLruCache Cache(2, 1);
  constexpr int NumThreads = 8;
  constexpr int OpsPerThread = 1500;

  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T, &Cache] {
      for (int Op = 0; Op < OpsPerThread; ++Op) {
        std::uint64_t Key = static_cast<std::uint64_t>((Op + T) % 6);
        CachedSolution S = makeSolution(Key);
        if (Op % 3 == 0) {
          Cache.store(Key, std::move(S));
        } else if (std::optional<CachedSolution> Hit =
                       Cache.lookup(Key, S.Bytes)) {
          // The copy must stay intact even while other threads evict
          // the entry it came from.
          EXPECT_EQ(2, Hit->Tree.numLeaves());
          EXPECT_DOUBLE_EQ(static_cast<double>(Key), Hit->Cost);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_LE(Cache.size(), 2u);
  EXPECT_EQ(Cache.hits() + Cache.misses(),
            static_cast<std::uint64_t>(NumThreads) * OpsPerThread * 2 / 3);
}

// clear() and size() racing stores: the whole-cache sweeps take every
// shard lock in sequence while writers are mid-flight.
TEST(StressResultCache, ClearAndSizeDuringStores) {
  ShardedLruCache Cache(32, 8);
  std::atomic<bool> Done{false};

  std::vector<std::thread> Writers;
  for (int T = 0; T < 4; ++T)
    Writers.emplace_back([T, &Cache] {
      for (int Op = 0; Op < 1200; ++Op) {
        std::uint64_t Key = static_cast<std::uint64_t>(T * 1000 + Op % 40);
        CachedSolution S = makeSolution(Key);
        Cache.store(Key, std::move(S));
        Cache.lookup(Key, makeSolution(Key).Bytes);
      }
    });
  std::thread Sweeper([&Cache, &Done] {
    while (!Done.load(std::memory_order_acquire)) {
      EXPECT_LE(Cache.size(), 32u);
      Cache.clear();
      std::this_thread::yield();
    }
  });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  Sweeper.join();
  EXPECT_LE(Cache.size(), 32u);
}

//===----------------------------------------------------------------------===//
// BoundedQueue close/drain races
//===----------------------------------------------------------------------===//

// Producers, consumers, and a closer all contend on a two-slot queue;
// after close, drained + popped must equal the number of accepted items.
TEST(StressJobQueue, ProducersConsumersAndClose) {
  BoundedQueue<int> Queue(2);
  std::atomic<int> Accepted{0};
  std::atomic<int> Consumed{0};

  std::vector<std::thread> Producers;
  for (int T = 0; T < 4; ++T)
    Producers.emplace_back([T, &Queue, &Accepted] {
      for (int I = 0; I < 500; ++I) {
        int Item = T * 1000 + I;
        if (I % 2 == 0 ? Queue.push(std::move(Item))
                       : Queue.tryPush(std::move(Item)))
          Accepted.fetch_add(1, std::memory_order_relaxed);
        else if (Queue.closed())
          return; // blocked pushes fail only once the queue closes
      }
    });
  std::vector<std::thread> Consumers;
  for (int T = 0; T < 4; ++T)
    Consumers.emplace_back([&Queue, &Consumed] {
      while (Queue.pop())
        Consumed.fetch_add(1, std::memory_order_relaxed);
    });

  for (std::thread &T : Producers)
    T.join();
  Queue.close();
  std::vector<int> Leftover = Queue.drain();
  for (std::thread &T : Consumers)
    T.join();

  EXPECT_EQ(Accepted.load(),
            Consumed.load() + static_cast<int>(Leftover.size()));
}

//===----------------------------------------------------------------------===//
// Loopback service: deadlines and shutdown in flight
//===----------------------------------------------------------------------===//

// Jobs whose deadlines expire while queued or mid-solve, interleaved
// with jobs that finish: every future must resolve with either a result
// or DeadlineExpired — and the deadline budget conversion must keep
// expired jobs from pinning workers.
TEST(StressService, InFlightDeadlineExpiry) {
  ServiceOptions Options;
  Options.NumWorkers = 4;
  Options.QueueCapacity = 64;
  Options.CacheCapacity = 0; // every job must really solve
  // A tiny budget-per-millisecond makes short deadlines bite mid-solve
  // instead of being absorbed by a fast exact solve.
  Options.NodesPerMilli = 50;
  TreeService Service(Options);

  std::vector<std::future<BuildResponse>> Futures;
  for (int I = 0; I < 24; ++I) {
    BuildRequest Request;
    Request.Matrix = narrowBandMatrix(10, static_cast<std::uint64_t>(I) + 1);
    Request.UseCache = false;
    // A hard node cap so even the no-deadline jobs finish promptly on a
    // matrix chosen for its poor pruning (truncated results are still
    // `ok()`; only the deadline can fail a job here).
    Request.NodeBudget = 20'000;
    // Thirds: instant expiry, tight-but-possible, and none.
    Request.DeadlineMillis = I % 3 == 0 ? 1 : (I % 3 == 1 ? 40 : 0);
    Futures.push_back(Service.submitAsync(std::move(Request)));
  }

  int Solved = 0;
  int Expired = 0;
  for (std::future<BuildResponse> &F : Futures) {
    BuildResponse Resp = F.get();
    if (Resp.ok()) {
      ++Solved;
      EXPECT_FALSE(Resp.Newick.empty());
    } else {
      EXPECT_EQ(ServiceError::DeadlineExpired, Resp.Error);
      ++Expired;
    }
  }
  EXPECT_EQ(24, Solved + Expired);
  // The no-deadline third can never expire.
  EXPECT_GE(Solved, 8);
}

// stop() racing a stream of submitters: every admitted job still gets
// an answer, every post-stop submission is rejected, nothing hangs.
TEST(StressService, ShutdownWhileSubmitting) {
  ServiceOptions Options;
  Options.NumWorkers = 3;
  Options.QueueCapacity = 8;
  Options.BlockOnFullQueue = false; // shed load instead of blocking
  TreeService Service(Options);

  std::atomic<int> Answered{0};
  std::vector<std::thread> Submitters;
  for (int T = 0; T < 4; ++T)
    Submitters.emplace_back([T, &Service, &Answered] {
      for (int I = 0; I < 40; ++I) {
        BuildRequest Request;
        Request.Generator = GeneratorKind::Uniform;
        Request.GenSpecies = 8;
        Request.GenSeed = static_cast<std::uint64_t>(T * 100 + I);
        BuildResponse Resp = Service.submit(std::move(Request));
        // Success, shed, or shutting down — but always an answer.
        EXPECT_TRUE(Resp.ok() || Resp.Error == ServiceError::QueueFull ||
                    Resp.Error == ServiceError::ShuttingDown);
        Answered.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Let the storm develop, then pull the plug under it.
  while (Answered.load(std::memory_order_acquire) < 30)
    std::this_thread::yield();
  Service.stop();
  for (std::thread &T : Submitters)
    T.join();

  EXPECT_EQ(160, Answered.load());
  // Every accepted job was answered: solved, failed, or drained at stop
  // (drained jobs are counted under Rejected).
  StatsSnapshot Stats = Service.stats();
  EXPECT_GE(Stats.Accepted, Stats.Completed + Stats.Failed);
  EXPECT_LE(Stats.Accepted - Stats.Completed - Stats.Failed,
            Stats.Rejected);
}

// Cache-enabled service hammered with a small set of repeated matrices
// from many client threads: whole-matrix hits replay concurrently with
// fresh solves and per-block stores of the same entries.
TEST(StressService, ConcurrentCacheHitsAndSolves) {
  ServiceOptions Options;
  Options.NumWorkers = 4;
  Options.CacheCapacity = 32;
  Options.CacheShards = 4;
  TreeService Service(Options);

  std::vector<std::thread> Clients;
  std::atomic<int> Failures{0};
  for (int T = 0; T < 6; ++T)
    Clients.emplace_back([T, &Service, &Failures] {
      for (int I = 0; I < 20; ++I) {
        BuildRequest Request;
        Request.Generator = GeneratorKind::Clustered;
        Request.GenSpecies = 12;
        // Only 4 distinct matrices across all clients: most requests
        // race toward the same cache lines.
        Request.GenSeed = static_cast<std::uint64_t>((T + I) % 4 + 1);
        BuildResponse Resp = Service.submit(std::move(Request));
        if (!Resp.ok())
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(0, Failures.load());
  StatsSnapshot Stats = Service.stats();
  EXPECT_GT(Stats.WholeHits, 0u);
  Service.stop();
}
