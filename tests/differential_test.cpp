//===- tests/differential_test.cpp - Cross-solver fuzzing -------*- C++ -*-===//
//
// Randomized differential testing: every solver must agree on the
// optimum for the same matrix, including on adversarial inputs with
// many ties (integer-rounded distances create large lower-bound
// plateaus, the regime where subtle pruning bugs hide).
//
//===----------------------------------------------------------------------===//

#include "bnb/BestFirstBnb.h"
#include "bnb/SequentialBnb.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "mp/MpBnb.h"
#include "parallel/ThreadedBnb.h"
#include "sim/ClusterSim.h"
#include "support/Rng.h"
#include "tree/RobinsonFoulds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace mutk;

namespace {

/// A metric with heavy ties: integer entries in a narrow range, then
/// metric closure (which preserves integrality).
DistanceMatrix tiedMetric(int N, std::uint64_t Seed) {
  Rng Rand(Seed);
  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J, static_cast<double>(Rand.nextInt(3, 9)));
  return metricClosure(M);
}

} // namespace

TEST(Differential, AllSolversAgreeOnTiedMetrics) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M = tiedMetric(9, Seed);
    double Dfs = solveMutSequential(M).Cost;
    EXPECT_NEAR(solveMutBestFirst(M).Cost, Dfs, 1e-9) << "bf seed " << Seed;
    EXPECT_NEAR(solveMutThreaded(M, 3).Cost, Dfs, 1e-9)
        << "threads seed " << Seed;
    EXPECT_NEAR(solveMutMessagePassing(M, 3).Cost, Dfs, 1e-9)
        << "mp seed " << Seed;
    ClusterSpec Spec;
    Spec.NumNodes = 5;
    EXPECT_NEAR(simulateClusterBnb(M, Spec).Cost, Dfs, 1e-9)
        << "sim seed " << Seed;
  }
}

TEST(Differential, CollectAllSetsMatchBetweenDfsAndBestFirst) {
  // Not just the cost: the *sets* of optimal topologies must coincide.
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = tiedMetric(7, Seed);
    BnbOptions Options;
    Options.CollectAllOptimal = true;
    MutResult Dfs = solveMutSequential(M, Options);
    BestFirstResult Bf = solveMutBestFirst(M, Options);

    auto canon = [](const std::vector<PhyloTree> &Trees) {
      std::set<std::set<std::vector<int>>> Result;
      for (const PhyloTree &T : Trees)
        Result.insert(nontrivialClades(T));
      return Result;
    };
    EXPECT_EQ(canon(Dfs.AllOptimal), canon(Bf.AllOptimal))
        << "seed " << Seed;
    EXPECT_FALSE(Dfs.AllOptimal.empty());
  }
}

TEST(Differential, IntegerCostsStayIntegral) {
  // Integer distances realize half-integral heights, so the optimal
  // weight must be a multiple of 0.5 — a cheap arithmetic-corruption
  // canary.
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M = tiedMetric(8, Seed);
    double Cost = solveMutSequential(M).Cost;
    EXPECT_NEAR(Cost * 2.0, std::round(Cost * 2.0), 1e-9) << "seed " << Seed;
  }
}

TEST(Differential, TiedMatricesHaveManyOptima) {
  // Sanity that the workload really exercises plateaus.
  std::size_t MaxOptima = 0;
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = tiedMetric(7, Seed);
    BnbOptions Options;
    Options.CollectAllOptimal = true;
    MaxOptima =
        std::max(MaxOptima, solveMutSequential(M, Options).AllOptimal.size());
  }
  EXPECT_GT(MaxOptima, 1u);
}

TEST(Differential, SolversAgreeOnMixedWorkloadSweep) {
  Rng Rand(99);
  for (int Trial = 0; Trial < 6; ++Trial) {
    int N = Rand.nextInt(4, 11);
    std::uint64_t Seed = Rand.next();
    DistanceMatrix M;
    switch (Trial % 3) {
    case 0:
      M = uniformRandomMetric(N, Seed);
      break;
    case 1:
      M = plantedClusterMetric(N, Seed);
      break;
    default:
      M = tiedMetric(N, Seed);
      break;
    }
    double Dfs = solveMutSequential(M).Cost;
    EXPECT_NEAR(solveMutBestFirst(M).Cost, Dfs, 1e-9);
    EXPECT_NEAR(solveMutThreaded(M, 2).Cost, Dfs, 1e-9);
  }
}
