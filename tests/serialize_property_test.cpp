//===- tests/serialize_property_test.cpp - Codec properties -----*- C++ -*-===//
//
// Property tests over every codec the cluster ships across machines:
// search checkpoints, phylogenetic trees, protocol requests/responses
// and shard-cache entries. Two properties per codec: decode(encode(x))
// reproduces x for randomized inputs, and corrupted bytes (truncations,
// bit flips) are *rejected or ignored* — never crash, never decode into
// a value that silently lies about the original. The flip loops run the
// decoders over thousands of malformed buffers, which is where ASan/
// UBSan earn their keep.
//
//===----------------------------------------------------------------------===//

#include "bnb/Checkpoint.h"
#include "bnb/SequentialBnb.h"
#include "dist/Cluster.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "mp/Serialize.h"
#include "service/Protocol.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace mutk;

namespace {

/// Deterministic splitmix64 stream — keeps every "random" case
/// reproducible from its seed.
struct Rng {
  std::uint64_t State;
  explicit Rng(std::uint64_t Seed) : State(Seed) {}
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  std::uint64_t below(std::uint64_t Bound) { return next() % Bound; }
};

/// A partial topology with a random number of placed species.
Topology randomTopology(const DistanceMatrix &M, Rng &R) {
  Topology T = Topology::initialPair(M);
  int Target = 2 + static_cast<int>(R.below(
                       static_cast<std::uint64_t>(M.size() - 1)));
  while (T.numPlaced() < Target)
    T = T.withNextSpeciesAt(static_cast<int>(R.below(
                                static_cast<std::uint64_t>(T.numNodes()))),
                            M);
  return T;
}

SearchCheckpoint randomCheckpoint(const DistanceMatrix &M, Rng &R) {
  SearchCheckpoint Ck;
  int FrontierSize = 1 + static_cast<int>(R.below(6));
  for (int I = 0; I < FrontierSize; ++I)
    Ck.Frontier.push_back(randomTopology(M, R));
  MutResult Solved = solveMutSequential(M);
  Ck.Incumbent = Solved.Tree;
  Ck.UpperBound = Solved.Cost;
  Ck.Stats.Branched = R.next() % 100000;
  Ck.Stats.Generated = R.next() % 100000;
  Ck.Stats.PrunedByBound = R.next() % 100000;
  Ck.Stats.PrunedByThreeThree = R.next() % 100000;
  Ck.Stats.UbUpdates = R.next() % 1000;
  Ck.Stats.Complete = (R.next() & 1) != 0;
  Ck.MatrixKey = fingerprint(M);
  return Ck;
}

std::vector<std::uint8_t> randomBytes(Rng &R, std::size_t MaxLen) {
  std::vector<std::uint8_t> Out(R.below(MaxLen + 1));
  for (std::uint8_t &B : Out)
    B = static_cast<std::uint8_t>(R.next());
  return Out;
}

void expectTopologyEq(const Topology &A, const Topology &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  EXPECT_EQ(A.numPlaced(), B.numPlaced());
  EXPECT_DOUBLE_EQ(A.cost(), B.cost());
  for (int I = 0; I < A.numNodes(); ++I) {
    EXPECT_EQ(A.node(I).Mask, B.node(I).Mask);
    EXPECT_DOUBLE_EQ(A.node(I).Height, B.node(I).Height);
  }
}

/// Structural equality. The codec stores a pre-order traversal, so a
/// decoded tree may index its nodes differently from the original;
/// comparing the canonical encodings compares shape, species, heights
/// and names while ignoring the storage order.
void expectTreeEq(const PhyloTree &A, const PhyloTree &B) {
  EXPECT_EQ(A.numNodes(), B.numNodes());
  EXPECT_EQ(A.numLeaves(), B.numLeaves());
  EXPECT_DOUBLE_EQ(A.weight(), B.weight());
  EXPECT_EQ(encodePhyloTree(A), encodePhyloTree(B));
}

//===----------------------------------------------------------------------===//
// Checkpoints
//===----------------------------------------------------------------------===//

TEST(CheckpointCodec, RandomRoundTrips) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    Rng R(Seed * 7919 + 1);
    DistanceMatrix M =
        uniformRandomMetric(6 + static_cast<int>(Seed % 4), Seed);
    SearchCheckpoint Ck = randomCheckpoint(M, R);
    auto Back = decodeSearchCheckpoint(encodeSearchCheckpoint(Ck));
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    ASSERT_EQ(Back->Frontier.size(), Ck.Frontier.size());
    for (std::size_t I = 0; I < Ck.Frontier.size(); ++I)
      expectTopologyEq(Back->Frontier[I], Ck.Frontier[I]);
    expectTreeEq(Back->Incumbent, Ck.Incumbent);
    EXPECT_DOUBLE_EQ(Back->UpperBound, Ck.UpperBound);
    EXPECT_EQ(Back->Stats.Branched, Ck.Stats.Branched);
    EXPECT_EQ(Back->Stats.Generated, Ck.Stats.Generated);
    EXPECT_EQ(Back->Stats.PrunedByBound, Ck.Stats.PrunedByBound);
    EXPECT_EQ(Back->Stats.PrunedByThreeThree, Ck.Stats.PrunedByThreeThree);
    EXPECT_EQ(Back->Stats.UbUpdates, Ck.Stats.UbUpdates);
    EXPECT_EQ(Back->Stats.Complete, Ck.Stats.Complete);
    EXPECT_EQ(Back->MatrixKey, Ck.MatrixKey);
  }
}

TEST(CheckpointCodec, EveryTruncationIsRejected) {
  Rng R(17);
  DistanceMatrix M = uniformRandomMetric(7, 3);
  std::vector<std::uint8_t> Bytes =
      encodeSearchCheckpoint(randomCheckpoint(M, R));
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<std::uint8_t> Prefix(Bytes.begin(),
                                     Bytes.begin() +
                                         static_cast<std::ptrdiff_t>(Len));
    EXPECT_FALSE(decodeSearchCheckpoint(Prefix).has_value())
        << "strict prefix of length " << Len << " decoded";
  }
}

TEST(CheckpointCodec, ByteFlipsNeverCrashTheDecoder) {
  Rng R(23);
  DistanceMatrix M = uniformRandomMetric(7, 5);
  std::vector<std::uint8_t> Bytes =
      encodeSearchCheckpoint(randomCheckpoint(M, R));
  // Flip every byte position through a handful of masks. Decoding may
  // succeed (a flipped count or height is still well-formed) or fail —
  // it must only never read out of bounds.
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<std::uint8_t> Mutated = Bytes;
    Mutated[I] ^= static_cast<std::uint8_t>(1u << (I % 8));
    (void)decodeSearchCheckpoint(Mutated);
  }
}

//===----------------------------------------------------------------------===//
// Trees
//===----------------------------------------------------------------------===//

TEST(TreeCodec, RandomRoundTrips) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    DistanceMatrix M =
        uniformRandomMetric(2 + static_cast<int>(Seed), Seed + 100);
    PhyloTree Tree = solveMutSequential(M).Tree;
    auto Back = decodePhyloTree(encodePhyloTree(Tree));
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    expectTreeEq(*Back, Tree);
  }
  // Degenerate shapes survive too.
  PhyloTree Single;
  Single.setRoot(Single.addLeaf(0));
  auto Back = decodePhyloTree(encodePhyloTree(Single));
  ASSERT_TRUE(Back.has_value());
  expectTreeEq(*Back, Single);
}

TEST(TreeCodec, ByteFlipsNeverCrashTheDecoder) {
  PhyloTree Tree = solveMutSequential(uniformRandomMetric(9, 9)).Tree;
  std::vector<std::uint8_t> Bytes = encodePhyloTree(Tree);
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<std::uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0xFF;
    (void)decodePhyloTree(Mutated);
    Mutated.resize(I);
    EXPECT_FALSE(decodePhyloTree(Mutated).has_value());
  }
}

//===----------------------------------------------------------------------===//
// Protocol requests and responses (the JobGrant / JobResult bodies)
//===----------------------------------------------------------------------===//

TEST(ProtocolCodec, RandomBuildRequestsRoundTrip) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    Rng R(Seed * 31 + 7);
    BuildRequest Build;
    Build.Matrix = uniformRandomMetric(4 + static_cast<int>(R.below(8)),
                                       Seed);
    Build.Mode = (R.next() & 1) ? CondenseMode::Maximum : CondenseMode::Minimum;
    Build.ThreeThree = (R.next() & 1) ? ThreeThreeMode::ThirdSpecies
                                      : ThreeThreeMode::None;
    Build.MaxExactBlockSize = 4 + static_cast<int>(R.below(20));
    Build.Polish = (R.next() & 1) != 0;
    Build.NodeBudget = R.next() % 1000000;
    Build.DeadlineMillis = static_cast<std::uint32_t>(R.below(100000));
    Build.UseCache = (R.next() & 1) != 0;
    Build.Incremental = (R.next() & 1) != 0;
    Build.Priority = static_cast<RequestPriority>(R.below(3));
    Build.Tenant = (R.next() & 1) ? "tenant-" + std::to_string(R.below(10))
                                  : std::string();

    auto Back = decodeRequest(encodeRequest(makeBuildRequest(Build)));
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->V, Verb::Build);
    EXPECT_TRUE(Back->Build.Matrix.approxEquals(Build.Matrix, 0.0));
    EXPECT_EQ(Back->Build.Mode, Build.Mode);
    EXPECT_EQ(Back->Build.ThreeThree, Build.ThreeThree);
    EXPECT_EQ(Back->Build.MaxExactBlockSize, Build.MaxExactBlockSize);
    EXPECT_EQ(Back->Build.Polish, Build.Polish);
    EXPECT_EQ(Back->Build.NodeBudget, Build.NodeBudget);
    EXPECT_EQ(Back->Build.DeadlineMillis, Build.DeadlineMillis);
    EXPECT_EQ(Back->Build.UseCache, Build.UseCache);
    EXPECT_EQ(Back->Build.Incremental, Build.Incremental);
    EXPECT_EQ(Back->Build.Priority, Build.Priority);
    EXPECT_EQ(Back->Build.Tenant, Build.Tenant);
  }
}

TEST(ProtocolCodec, RandomBuildResponsesRoundTrip) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    Rng R(Seed * 17 + 3);
    Response Resp;
    Resp.V = Verb::Build;
    Resp.Build.Newick = "(a,(b,c));";
    Resp.Build.Cost = static_cast<double>(R.below(1000)) / 8.0;
    Resp.Build.Exact = (R.next() & 1) != 0;
    Resp.Build.CacheHit = (R.next() & 1) != 0;
    Resp.Build.BlockCacheHits = static_cast<std::uint32_t>(R.below(50));
    Resp.Build.Branched = R.next() % 100000;
    const std::uint64_t NumBlocks = 1 + R.below(4);
    for (std::uint64_t B = 0; B < NumBlocks; ++B) {
      BlockSummary S;
      S.NumBlocks = 2 + static_cast<std::int32_t>(R.below(10));
      S.Cost = static_cast<double>(R.below(100));
      S.Exact = (R.next() & 1) != 0;
      S.FromCache = (R.next() & 1) != 0;
      Resp.Build.Blocks.push_back(S);
    }
    Resp.Build.IncrementalApplied = (R.next() & 1) != 0;
    Resp.Build.DirtyBlocks = static_cast<std::uint32_t>(R.below(20));
    Resp.Build.CleanBlocks = static_cast<std::uint32_t>(R.below(20));
    Resp.Build.TaxaAdded = static_cast<std::int32_t>(R.below(3));
    Resp.Build.TaxaRemoved = static_cast<std::int32_t>(R.below(3));
    Resp.Build.EntriesChanged = static_cast<std::int32_t>(R.below(9));
    Resp.Build.QueueMillis = static_cast<double>(R.below(5000)) / 16.0;
    Resp.Build.SolveMillis = static_cast<double>(R.below(5000)) / 16.0;
    Resp.Build.Tier = static_cast<QosTier>(R.below(3));
    Resp.Build.PredictedMillis = static_cast<double>(R.below(4000)) / 8.0;
    Resp.Build.Coalesced = (R.next() & 1) != 0;

    auto Back = decodeResponse(encodeResponse(Resp));
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->V, Verb::Build);
    EXPECT_EQ(Back->Build.Newick, Resp.Build.Newick);
    EXPECT_DOUBLE_EQ(Back->Build.Cost, Resp.Build.Cost);
    EXPECT_EQ(Back->Build.Exact, Resp.Build.Exact);
    EXPECT_EQ(Back->Build.CacheHit, Resp.Build.CacheHit);
    EXPECT_EQ(Back->Build.BlockCacheHits, Resp.Build.BlockCacheHits);
    EXPECT_EQ(Back->Build.Branched, Resp.Build.Branched);
    ASSERT_EQ(Back->Build.Blocks.size(), Resp.Build.Blocks.size());
    for (std::size_t B = 0; B < Resp.Build.Blocks.size(); ++B) {
      EXPECT_EQ(Back->Build.Blocks[B].NumBlocks,
                Resp.Build.Blocks[B].NumBlocks);
      EXPECT_EQ(Back->Build.Blocks[B].FromCache,
                Resp.Build.Blocks[B].FromCache);
    }
    EXPECT_EQ(Back->Build.IncrementalApplied, Resp.Build.IncrementalApplied);
    EXPECT_EQ(Back->Build.DirtyBlocks, Resp.Build.DirtyBlocks);
    EXPECT_EQ(Back->Build.CleanBlocks, Resp.Build.CleanBlocks);
    EXPECT_EQ(Back->Build.TaxaAdded, Resp.Build.TaxaAdded);
    EXPECT_EQ(Back->Build.TaxaRemoved, Resp.Build.TaxaRemoved);
    EXPECT_EQ(Back->Build.EntriesChanged, Resp.Build.EntriesChanged);
    EXPECT_DOUBLE_EQ(Back->Build.QueueMillis, Resp.Build.QueueMillis);
    EXPECT_DOUBLE_EQ(Back->Build.SolveMillis, Resp.Build.SolveMillis);
    EXPECT_EQ(Back->Build.Tier, Resp.Build.Tier);
    EXPECT_DOUBLE_EQ(Back->Build.PredictedMillis, Resp.Build.PredictedMillis);
    EXPECT_EQ(Back->Build.Coalesced, Resp.Build.Coalesced);
  }
}

TEST(ProtocolCodec, RequestByteFlipsNeverCrash) {
  BuildRequest Build;
  Build.Matrix = uniformRandomMetric(6, 2);
  std::vector<std::uint8_t> Bytes = encodeRequest(makeBuildRequest(Build));
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<std::uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0x55;
    (void)decodeRequest(Mutated);
    Mutated.resize(I);
    (void)decodeRequest(Mutated);
  }
}

//===----------------------------------------------------------------------===//
// Shard-cache entries (CacheHit / CacheInsert bodies)
//===----------------------------------------------------------------------===//

TEST(CacheEntryCodec, RandomRoundTrips) {
  for (std::uint64_t Seed = 0; Seed < 8; ++Seed) {
    Rng R(Seed + 500);
    DistanceMatrix M =
        uniformRandomMetric(3 + static_cast<int>(R.below(8)), Seed);
    MutResult Solved = solveMutSequential(M);
    CachedSolution Value;
    Value.Tree = Solved.Tree;
    Value.Cost = Solved.Cost;
    Value.Exact = (R.next() & 1) != 0;
    // The namespace flag must survive the wire: the receiver validates
    // it against the probed tier (whole vs block).
    Value.Block = (R.next() & 1) != 0;
    Value.Bytes = randomBytes(R, 200);
    std::uint64_t Key = R.next();

    auto Back = dist::decodeCacheEntry(dist::encodeCacheEntry(Key, Value));
    ASSERT_TRUE(Back.has_value()) << "seed " << Seed;
    EXPECT_EQ(Back->first, Key);
    EXPECT_DOUBLE_EQ(Back->second.Cost, Value.Cost);
    EXPECT_EQ(Back->second.Exact, Value.Exact);
    EXPECT_EQ(Back->second.Block, Value.Block);
    EXPECT_EQ(Back->second.Bytes, Value.Bytes);
    expectTreeEq(Back->second.Tree, Value.Tree);
  }
}

TEST(CacheEntryCodec, CorruptionIsRejectedOrHarmless) {
  Rng R(77);
  MutResult Solved = solveMutSequential(uniformRandomMetric(8, 7));
  CachedSolution Value;
  Value.Tree = Solved.Tree;
  Value.Cost = Solved.Cost;
  Value.Exact = true;
  Value.Bytes = randomBytes(R, 64);
  std::vector<std::uint8_t> Bytes = dist::encodeCacheEntry(99, Value);
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<std::uint8_t> Prefix(Bytes.begin(),
                                     Bytes.begin() +
                                         static_cast<std::ptrdiff_t>(Len));
    EXPECT_FALSE(dist::decodeCacheEntry(Prefix).has_value())
        << "strict prefix of length " << Len << " decoded";
  }
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<std::uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0xA5;
    (void)dist::decodeCacheEntry(Mutated);
  }
}

} // namespace
