//===- tests/sim_test.cpp - Cluster discrete-event simulator ----*- C++ -*-===//

#include "matrix/Generators.h"
#include "seq/EvolutionSim.h"
#include "sim/ClusterSim.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(ClusterSim, TrivialSizes) {
  ClusterSpec Spec;
  Spec.NumNodes = 4;
  DistanceMatrix M1(1);
  ClusterSimResult R1 = simulateClusterBnb(M1, Spec);
  EXPECT_EQ(R1.Tree.numLeaves(), 1);
  EXPECT_EQ(R1.Makespan, 0.0);

  DistanceMatrix M2(2);
  M2.set(0, 1, 10);
  ClusterSimResult R2 = simulateClusterBnb(M2, Spec);
  EXPECT_DOUBLE_EQ(R2.Cost, 10.0);
}

TEST(ClusterSim, CostEqualsSequentialOptimum) {
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    double Optimal = solveMutSequential(M).Cost;
    for (int Nodes : {1, 2, 8, 16}) {
      ClusterSpec Spec;
      Spec.NumNodes = Nodes;
      ClusterSimResult R = simulateClusterBnb(M, Spec);
      EXPECT_NEAR(R.Cost, Optimal, 1e-9)
          << "seed " << Seed << " nodes " << Nodes;
      EXPECT_TRUE(R.Stats.Complete);
      EXPECT_TRUE(R.Tree.dominatesMatrix(M));
    }
  }
}

TEST(ClusterSim, Deterministic) {
  DistanceMatrix M = hmdnaLikeMatrix(11, 4);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  ClusterSimResult A = simulateClusterBnb(M, Spec);
  ClusterSimResult B = simulateClusterBnb(M, Spec);
  EXPECT_DOUBLE_EQ(A.Makespan, B.Makespan);
  EXPECT_EQ(A.Stats.Branched, B.Stats.Branched);
  EXPECT_DOUBLE_EQ(A.Cost, B.Cost);
}

TEST(ClusterSim, MakespanBoundedByWork) {
  DistanceMatrix M = uniformRandomMetric(12, 7);
  ClusterSpec Spec;
  Spec.NumNodes = 8;
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  // The makespan can never beat a perfect split of the busy time, and
  // never exceeds seed time + total busy + idle accounting.
  double Busy = 0.0;
  for (const SimNodeStats &N : R.Nodes)
    Busy += N.BusyTime;
  EXPECT_GE(R.Makespan + 1e-9, R.SeedTime + Busy / Spec.NumNodes);
  EXPECT_GE(Busy, 0.0);
  for (const SimNodeStats &N : R.Nodes) {
    EXPECT_LE(N.FinishTime, R.Makespan + 1e-9);
    EXPECT_GE(N.IdleTime, 0.0);
  }
}

TEST(ClusterSim, SequentialBaselineHasNoIdleNodes) {
  DistanceMatrix M = uniformRandomMetric(10, 3);
  ClusterSimResult R = simulateSequentialBaseline(M);
  ASSERT_EQ(R.Nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(R.Nodes[0].IdleTime, 0.0);
  EXPECT_GT(R.Makespan, 0.0);
}

TEST(ClusterSim, MoreNodesDoNotIncreaseMakespanMuch) {
  // On a nontrivial instance, 16 virtual nodes should finish well before
  // the 1-node baseline (the headline claim of the HPCAsia figures).
  DistanceMatrix M = uniformRandomMetric(13, 11);
  ClusterSimResult Seq = simulateSequentialBaseline(M);
  ClusterSpec Spec;
  Spec.NumNodes = 16;
  ClusterSimResult Par = simulateClusterBnb(M, Spec);
  EXPECT_LT(Par.Makespan, Seq.Makespan);
}

TEST(ClusterSim, GlobalPoolAblationStaysCorrect) {
  DistanceMatrix M = uniformRandomMetric(11, 5);
  double Optimal = solveMutSequential(M).Cost;
  ClusterSpec Spec;
  Spec.NumNodes = 8;
  Spec.UseGlobalPool = false;
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  EXPECT_NEAR(R.Cost, Optimal, 1e-9);
  for (const SimNodeStats &N : R.Nodes) {
    EXPECT_EQ(N.PulledFromGlobal, 0u);
    EXPECT_EQ(N.DonatedToGlobal, 0u);
  }
}

TEST(ClusterSim, HeterogeneousSpeedsStayCorrect) {
  DistanceMatrix M = hmdnaLikeMatrix(10, 8);
  double Optimal = solveMutSequential(M).Cost;
  ClusterSpec Grid;
  Grid.NumNodes = 6;
  Grid.NodeSpeeds = {1.0, 1.0, 0.5, 0.5, 0.25, 0.25};
  Grid.UbBroadcastLatency = 20.0;
  Grid.PoolTransferCost = 8.0;
  ClusterSimResult R = simulateClusterBnb(M, Grid);
  EXPECT_NEAR(R.Cost, Optimal, 1e-9);
}

TEST(ClusterSim, SlowerNodesDoLessWork) {
  DistanceMatrix M = uniformRandomMetric(13, 17);
  ClusterSpec Spec;
  Spec.NumNodes = 4;
  Spec.NodeSpeeds = {4.0, 4.0, 0.25, 0.25};
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  std::uint64_t FastWork = R.Nodes[0].Branched + R.Nodes[1].Branched;
  std::uint64_t SlowWork = R.Nodes[2].Branched + R.Nodes[3].Branched;
  EXPECT_GT(FastWork, SlowWork);
}

TEST(ClusterSim, ExtremeLatencyOnlyDelaysInformation) {
  // With a near-infinite UB broadcast latency, workers never see each
  // other's bounds — more work, but still the exact optimum (each node's
  // own discoveries are enough for correctness).
  DistanceMatrix M = uniformRandomMetric(11, 13);
  double Optimal = solveMutSequential(M).Cost;
  ClusterSpec Spec;
  Spec.NumNodes = 8;
  Spec.UbBroadcastLatency = 1e12;
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  EXPECT_NEAR(R.Cost, Optimal, 1e-9);

  ClusterSpec Fast = Spec;
  Fast.UbBroadcastLatency = 0.0;
  ClusterSimResult Quick = simulateClusterBnb(M, Fast);
  EXPECT_NEAR(Quick.Cost, Optimal, 1e-9);
}

TEST(ClusterSim, ZeroCostModelStillTerminates) {
  // Degenerate cost model: all virtual costs zero. The schedule loses
  // meaning but the search must still terminate with the optimum.
  DistanceMatrix M = uniformRandomMetric(9, 4);
  ClusterSpec Spec;
  Spec.NumNodes = 4;
  Spec.BranchCost = 0.0;
  Spec.BoundCheckCost = 0.0;
  Spec.PoolTransferCost = 0.0;
  Spec.UbBroadcastLatency = 0.0;
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  EXPECT_NEAR(R.Cost, solveMutSequential(M).Cost, 1e-9);
  EXPECT_EQ(R.Makespan, 0.0);
}

TEST(ClusterSim, NodeLimitTerminates) {
  DistanceMatrix M = uniformRandomMetric(16, 2);
  ClusterSpec Spec;
  Spec.NumNodes = 8;
  BnbOptions Options;
  Options.MaxBranchedNodes = 100;
  ClusterSimResult R = simulateClusterBnb(M, Spec, Options);
  EXPECT_FALSE(R.Stats.Complete);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

class ClusterSimProperty : public testing::TestWithParam<int> {};

TEST_P(ClusterSimProperty, OptimalCostAcrossNodeCounts) {
  DistanceMatrix M = plantedClusterMetric(11, 321);
  double Optimal = solveMutSequential(M).Cost;
  ClusterSpec Spec;
  Spec.NumNodes = GetParam();
  ClusterSimResult R = simulateClusterBnb(M, Spec);
  EXPECT_NEAR(R.Cost, Optimal, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ClusterSimProperty,
                         testing::Values(1, 2, 3, 4, 8, 16, 32));
