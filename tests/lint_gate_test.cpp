//===- tests/lint_gate_test.cpp - Fixture tests for scripts/lint.sh -------===//
//
// Seeds known violations into synthetic source trees and asserts that
// scripts/lint.sh (pointed at them via MUTK_LINT_ROOT) rejects each one
// with the right layer's message — and that a clean tree passes. This
// keeps the lint gate itself honest: a regression that silently
// disables a layer fails here, not in the next PR that needed it.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

namespace fs = std::filesystem;

namespace {

/// Runs \p Command, returning its exit status and appending combined
/// stdout+stderr to \p Output.
int runCommand(const std::string &Command, std::string &Output) {
  FILE *Pipe = popen((Command + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  std::array<char, 4096> Buf{};
  std::size_t N = 0;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Output.append(Buf.data(), N);
  return pclose(Pipe);
}

/// A disposable source tree the lint gate can be pointed at.
class FixtureTree {
public:
  FixtureTree() {
    // The pid keeps concurrent ctest processes (which share the gtest
    // random seed and each start the counter at zero) out of each
    // other's trees.
    Root = fs::temp_directory_path() /
           ("mutk_lint_fixture_" + std::to_string(::getpid()) + "_" +
            std::to_string(Counter++));
    fs::create_directories(Root / "src" / "obs");
    fs::create_directories(Root / "docs");
    // Layer 3 requires the metric catalog to exist.
    write("docs/observability.md", "# Metrics\n\n`mutk_documented_total`\n");
  }
  ~FixtureTree() {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  void write(const std::string &RelPath, const std::string &Content) {
    fs::path P = Root / RelPath;
    fs::create_directories(P.parent_path());
    std::ofstream Out(P);
    Out << Content;
  }

  /// Lints this tree; returns the exit status, filling \p Output.
  int lint(std::string &Output) const {
    std::string Script = std::string(MUTK_REPO_ROOT) + "/scripts/lint.sh";
    std::string Cmd = "MUTK_LINT_SKIP_TIDY=1 MUTK_LINT_ROOT='" +
                      Root.string() + "' bash '" + Script + "'";
    return runCommand(Cmd, Output);
  }

private:
  fs::path Root;
  static int Counter;
};

int FixtureTree::Counter = 0;

} // namespace

TEST(LintGate, CleanTreePasses) {
  FixtureTree Tree;
  Tree.write("src/ok.cpp", "int answer() { return 42; }\n");
  std::string Out;
  EXPECT_EQ(Tree.lint(Out), 0) << Out;
  EXPECT_NE(Out.find("lint: OK"), std::string::npos) << Out;
}

TEST(LintGate, NakedNewIsRejected) {
  FixtureTree Tree;
  Tree.write("src/leaky.cpp", "int *leak() { return new int(7); }\n");
  std::string Out;
  EXPECT_NE(Tree.lint(Out), 0) << Out;
  EXPECT_NE(Out.find("naked 'new' expression"), std::string::npos) << Out;
}

TEST(LintGate, UndocumentedMetricIsRejected) {
  FixtureTree Tree;
  Tree.write("src/obs/Bad.cpp",
             "const char *name() { return \"mutk_bogus_total\"; }\n");
  std::string Out;
  EXPECT_NE(Tree.lint(Out), 0) << Out;
  EXPECT_NE(Out.find("absent from docs/observability.md"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("mutk_bogus_total"), std::string::npos) << Out;
}

TEST(LintGate, RawMutexMemberIsRejected) {
  FixtureTree Tree;
  Tree.write("src/unannotated.h",
             "#include <mutex>\n"
             "struct S {\n"
             "  std::mutex Mu;\n"
             "  int Guarded = 0;\n"
             "};\n");
  std::string Out;
  EXPECT_NE(Tree.lint(Out), 0) << Out;
  EXPECT_NE(Out.find("raw standard-library locking primitive"),
            std::string::npos)
      << Out;
}

TEST(LintGate, CommentedLockTalkIsNotRejected) {
  FixtureTree Tree;
  Tree.write("src/prose.cpp",
             "// The old design used a std::mutex here; see support/Mutex.h\n"
             "int ok() { return 1; }\n");
  std::string Out;
  EXPECT_EQ(Tree.lint(Out), 0) << Out;
}

TEST(LintGate, SupportWrapperAllowlistHolds) {
  // The wrapper itself is the one place raw primitives are legal.
  FixtureTree Tree;
  Tree.write("src/support/Mutex.h",
             "#include <mutex>\n"
             "struct W { std::mutex M; };\n");
  std::string Out;
  EXPECT_EQ(Tree.lint(Out), 0) << Out;
}
