//===- tests/seq_test.cpp - Edit distance & evolution simulator -*- C++ -*-===//

#include "matrix/MetricUtils.h"
#include "seq/EditDistance.h"
#include "seq/EvolutionSim.h"
#include "seq/Fasta.h"
#include "support/Rng.h"
#include "tree/RobinsonFoulds.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

/// Random ACGT string of length \p Len.
std::string randomDna(Rng &Rand, int Len) {
  static const char Bases[] = "ACGT";
  std::string S(static_cast<std::size_t>(Len), 'A');
  for (char &C : S)
    C = Bases[Rand.nextBelow(4)];
  return S;
}

} // namespace

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(editDistance("", ""), 0);
  EXPECT_EQ(editDistance("A", ""), 1);
  EXPECT_EQ(editDistance("", "ACGT"), 4);
  EXPECT_EQ(editDistance("ACGT", "ACGT"), 0);
  EXPECT_EQ(editDistance("ACGT", "AGGT"), 1);  // substitution
  EXPECT_EQ(editDistance("ACGT", "ACGGT"), 1); // insertion
  EXPECT_EQ(editDistance("kitten", "sitting"), 3);
}

TEST(EditDistance, Symmetric) {
  Rng Rand(1);
  for (int I = 0; I < 20; ++I) {
    std::string A = randomDna(Rand, Rand.nextInt(0, 40));
    std::string B = randomDna(Rand, Rand.nextInt(0, 40));
    EXPECT_EQ(editDistance(A, B), editDistance(B, A));
  }
}

TEST(EditDistance, TriangleInequality) {
  Rng Rand(2);
  for (int I = 0; I < 30; ++I) {
    std::string A = randomDna(Rand, Rand.nextInt(0, 25));
    std::string B = randomDna(Rand, Rand.nextInt(0, 25));
    std::string C = randomDna(Rand, Rand.nextInt(0, 25));
    EXPECT_LE(editDistance(A, C), editDistance(A, B) + editDistance(B, C));
  }
}

TEST(EditDistance, BandedExactWhenWithinBand) {
  Rng Rand(3);
  for (int I = 0; I < 30; ++I) {
    std::string A = randomDna(Rand, 30);
    std::string B = A;
    // A few local edits keep the distance small.
    for (int E = 0; E < 3; ++E)
      B[static_cast<std::size_t>(Rand.nextInt(0, 29))] = 'A';
    int Exact = editDistance(A, B);
    EXPECT_EQ(bandedEditDistance(A, B, 10), Exact);
  }
}

TEST(EditDistance, BandedSignalsOverflow) {
  std::string A(20, 'A');
  std::string B(20, 'C');
  EXPECT_GT(bandedEditDistance(A, B, 5), 5); // true distance is 20
}

TEST(EditDistance, FastEqualsFull) {
  Rng Rand(4);
  for (int I = 0; I < 40; ++I) {
    std::string A = randomDna(Rand, Rand.nextInt(0, 60));
    std::string B = randomDna(Rand, Rand.nextInt(0, 60));
    EXPECT_EQ(fastEditDistance(A, B), editDistance(A, B))
        << "A=" << A << " B=" << B;
  }
}

TEST(EditDistance, FastHandlesVeryDifferentLengths) {
  EXPECT_EQ(fastEditDistance("A", std::string(100, 'A')), 99);
  EXPECT_EQ(fastEditDistance(std::string(50, 'C'), ""), 50);
}

TEST(EditDistance, Hamming) {
  EXPECT_EQ(hammingDistance("ACGT", "ACGT"), 0);
  EXPECT_EQ(hammingDistance("ACGT", "TGCA"), 4);
  EXPECT_EQ(hammingDistance("", ""), 0);
}

TEST(EvolutionSim, DeterministicAndShaped) {
  EvolutionResult A = simulateEvolution(10, 42);
  EvolutionResult B = simulateEvolution(10, 42);
  ASSERT_EQ(A.Sequences.size(), 10u);
  EXPECT_EQ(A.Sequences, B.Sequences);
  EXPECT_EQ(A.TrueTree.numLeaves(), 10);
  EXPECT_TRUE(A.TrueTree.isWellFormed());
  EXPECT_TRUE(A.TrueTree.hasMonotoneHeights());
  EXPECT_EQ(A.Names.front(), "dna0");
}

TEST(EvolutionSim, SequencesMutateAlongTree) {
  EvolutionSpec Spec;
  Spec.SubstitutionRate = 0.3; // strong divergence
  EvolutionResult R = simulateEvolution(6, 7, Spec);
  // At least one pair must differ.
  bool AnyDiff = false;
  for (std::size_t I = 1; I < R.Sequences.size(); ++I)
    AnyDiff |= (R.Sequences[0] != R.Sequences[I]);
  EXPECT_TRUE(AnyDiff);
}

TEST(EvolutionSim, ZeroRatesKeepSequencesIdentical) {
  EvolutionSpec Spec;
  Spec.SubstitutionRate = 0.0;
  Spec.IndelRate = 0.0;
  EvolutionResult R = simulateEvolution(5, 9, Spec);
  for (const std::string &S : R.Sequences)
    EXPECT_EQ(S, R.Sequences[0]);
}

TEST(EvolutionSim, EditDistanceMatrixIsMetric) {
  for (std::uint64_t Seed : {1u, 2u, 3u}) {
    DistanceMatrix M = hmdnaLikeMatrix(12, Seed);
    EXPECT_EQ(M.size(), 12);
    EXPECT_TRUE(isMetric(M)) << "seed " << Seed;
    EXPECT_EQ(M.name(0), "dna0");
  }
}

TEST(EvolutionSim, PureTransitionBiasOnlyMutatesWithinClass) {
  // TransitionBias = 1 and no indels: every difference to the ancestor
  // must be a purine<->purine or pyrimidine<->pyrimidine swap. With two
  // species, species 0's sequence relates to species 1's only through
  // substitutions along the two branches, so compare classes pairwise.
  EvolutionSpec Spec;
  Spec.TransitionBias = 1.0;
  Spec.IndelRate = 0.0;
  Spec.SubstitutionRate = 0.4;
  EvolutionResult R = simulateEvolution(2, 11, Spec);
  ASSERT_EQ(R.Sequences[0].size(), R.Sequences[1].size());
  auto isPurine = [](char C) { return C == 'A' || C == 'G'; };
  int Diffs = 0;
  for (std::size_t I = 0; I < R.Sequences[0].size(); ++I) {
    char A = R.Sequences[0][I];
    char B = R.Sequences[1][I];
    if (A == B)
      continue;
    ++Diffs;
    EXPECT_EQ(isPurine(A), isPurine(B))
        << "transversion at site " << I << " despite bias 1.0";
  }
  EXPECT_GT(Diffs, 0);
}

TEST(EvolutionSim, TransitionBiasChangesSequences) {
  EvolutionSpec JukesCantor;
  JukesCantor.TransitionBias = 1.0 / 3.0;
  EvolutionSpec Kimura;
  Kimura.TransitionBias = 0.9;
  EvolutionResult A = simulateEvolution(6, 13, JukesCantor);
  EvolutionResult B = simulateEvolution(6, 13, Kimura);
  EXPECT_NE(A.Sequences, B.Sequences);
}

TEST(EvolutionSim, SingleSpecies) {
  EvolutionResult R = simulateEvolution(1, 3);
  EXPECT_EQ(R.TrueTree.numLeaves(), 1);
  EXPECT_EQ(R.Sequences.size(), 1u);
  DistanceMatrix M = editDistanceMatrix(R.Sequences, R.Names);
  EXPECT_EQ(M.size(), 1);
}

TEST(EvolutionSim, CloserInTreeMeansSmallerDistanceOnAverage) {
  // With near-constant rates, pairs with a shallow LCA should on average
  // have smaller edit distance than pairs joined at the root.
  EvolutionSpec Spec;
  Spec.SubstitutionRate = 0.15;
  Spec.SequenceLength = 300;
  Spec.RateVariation = 0.0; // strict clock for this property
  EvolutionResult R = simulateEvolution(12, 21, Spec);
  DistanceMatrix M = editDistanceMatrix(R.Sequences);

  double SumShallow = 0.0, SumDeep = 0.0;
  int CountShallow = 0, CountDeep = 0;
  double RootH = R.TrueTree.rootHeight();
  for (int I = 0; I < 12; ++I)
    for (int J = I + 1; J < 12; ++J) {
      double LcaH = R.TrueTree.node(R.TrueTree.lcaOfSpecies(I, J)).Height;
      if (LcaH < 0.4 * RootH) {
        SumShallow += M.at(I, J);
        ++CountShallow;
      } else if (LcaH > 0.9 * RootH) {
        SumDeep += M.at(I, J);
        ++CountDeep;
      }
    }
  ASSERT_GT(CountShallow, 0);
  ASSERT_GT(CountDeep, 0);
  EXPECT_LT(SumShallow / CountShallow, SumDeep / CountDeep);
}

TEST(Fasta, RoundTrip) {
  std::vector<FastaRecord> Records = {
      {"dna0 synthetic", std::string(150, 'A') + std::string(30, 'C')},
      {"dna1", "ACGT"},
  };
  auto Back = fastaFromString(fastaToString(Records));
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0].Name, "dna0 synthetic");
  EXPECT_EQ((*Back)[0].Sequence, Records[0].Sequence);
  EXPECT_EQ((*Back)[1].Sequence, "ACGT");
}

TEST(Fasta, WrapsAtSeventyColumns) {
  std::vector<FastaRecord> Records = {{"x", std::string(150, 'G')}};
  std::string Text = fastaToString(Records);
  // 1 header + 3 sequence lines (70 + 70 + 10).
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 4);
}

TEST(Fasta, ParserNormalizesCaseAndWhitespace) {
  auto Records = fastaFromString(">seq one\r\nac gt\nACGT\n\n>two\ntt\n");
  ASSERT_TRUE(Records.has_value());
  EXPECT_EQ((*Records)[0].Name, "seq one");
  EXPECT_EQ((*Records)[0].Sequence, "ACGTACGT");
  EXPECT_EQ((*Records)[1].Sequence, "TT");
}

TEST(Fasta, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(fastaFromString("ACGT\n>late\n", &Error).has_value());
  EXPECT_NE(Error.find("before the first"), std::string::npos);
  EXPECT_FALSE(fastaFromString("", &Error).has_value());
}

TEST(Fasta, FileRoundTripWithSimulatedData) {
  EvolutionResult Sim = simulateEvolution(6, 3);
  std::vector<FastaRecord> Records;
  for (std::size_t I = 0; I < Sim.Sequences.size(); ++I)
    Records.push_back(FastaRecord{Sim.Names[I], Sim.Sequences[I]});
  std::string Path = testing::TempDir() + "mutk_fasta_test.fa";
  ASSERT_TRUE(writeFastaFile(Path, Records));
  auto Back = readFastaFile(Path);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), 6u);
  for (std::size_t I = 0; I < 6; ++I)
    EXPECT_EQ((*Back)[I].Sequence, Sim.Sequences[I]);
}

// Property: fast edit distance equals the full DP across length scales.
class EditDistanceProperty : public testing::TestWithParam<int> {};

TEST_P(EditDistanceProperty, FastEqualsFullAtScale) {
  Rng Rand(static_cast<std::uint64_t>(GetParam()));
  std::string A = randomDna(Rand, GetParam());
  std::string B = A;
  // Apply ~10% edits.
  int Edits = std::max(1, GetParam() / 10);
  for (int E = 0; E < Edits; ++E) {
    std::size_t Pos = static_cast<std::size_t>(
        Rand.nextBelow(std::max<std::uint64_t>(1, B.size())));
    switch (Rand.nextInt(0, 2)) {
    case 0:
      if (!B.empty())
        B[Pos] = 'T';
      break;
    case 1:
      B.insert(Pos, 1, 'G');
      break;
    default:
      if (!B.empty())
        B.erase(Pos, 1);
      break;
    }
  }
  EXPECT_EQ(fastEditDistance(A, B), editDistance(A, B));
}

INSTANTIATE_TEST_SUITE_P(Lengths, EditDistanceProperty,
                         testing::Values(1, 5, 20, 80, 200, 500));
