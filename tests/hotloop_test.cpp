//===- tests/hotloop_test.cpp - B&B hot-loop invariants ---------*- C++ -*-===//
//
// Regression tests for the hot-loop overhaul: the once-per-child cached
// lower bound (BnbStats::BoundEvals), the 3-3-before-bound pruning
// attribution, the per-solver TopologyArena, the bitmask maxmin fast
// path and the threaded solver's deterministic stats aggregation.
//
//===----------------------------------------------------------------------===//

#include "bnb/Arena.h"
#include "bnb/BestFirstBnb.h"
#include "bnb/Engine.h"
#include "bnb/SequentialBnb.h"
#include "bnb/Topology.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "parallel/ThreadedBnb.h"
#include "seq/EvolutionSim.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace mutk;

namespace {

BnbOptions quietOptions(ThreeThreeMode TT = ThreeThreeMode::None) {
  BnbOptions Options;
  Options.ThreeThree = TT;
  Options.PublishMetrics = false;
  return Options;
}

DistanceMatrix hardDna(int N, std::uint64_t Seed) {
  EvolutionSpec Spec;
  Spec.SequenceLength = 120;
  Spec.SubstitutionRate = 0.5;
  Spec.RateVariation = 1.2;
  return hmdnaLikeMatrix(N, Seed, Spec);
}

// ---------------------------------------------------------------------------
// S1: the lower bound is evaluated exactly once per generated child.
// ---------------------------------------------------------------------------

TEST(HotLoop, BranchEvaluatesBoundOncePerChild) {
  DistanceMatrix M = hmdnaLikeMatrix(10, 3);
  BnbEngine Engine(M, quietOptions());
  BnbStats Stats;
  std::vector<BranchedChild> Children;
  Topology T = Engine.rootTopology();
  // Walk a few levels; at every branching the bound must have run
  // exactly once per generated child, and each survivor must carry the
  // bound the engine would recompute for it.
  while (!Engine.isComplete(T)) {
    std::uint64_t GenBefore = Stats.Generated;
    std::uint64_t EvalBefore = Stats.BoundEvals;
    Engine.branch(T, Engine.initialUpperBound() + 1.0, Stats, Children);
    EXPECT_EQ(Stats.BoundEvals - EvalBefore, Stats.Generated - GenBefore);
    ASSERT_FALSE(Children.empty());
    for (const BranchedChild &BC : Children)
      EXPECT_EQ(BC.LowerBound, Engine.lowerBound(BC.Node));
    T = Children.front().Node;
  }
}

TEST(HotLoop, SolversEvaluateBoundOncePerGeneratedChild) {
  DistanceMatrix M = hardDna(13, 5);
  for (ThreeThreeMode TT :
       {ThreeThreeMode::None, ThreeThreeMode::ThirdSpecies,
        ThreeThreeMode::AllInsertions}) {
    MutResult Seq = solveMutSequential(M, quietOptions(TT));
    EXPECT_EQ(Seq.Stats.BoundEvals, Seq.Stats.Generated);
    BestFirstResult Best = solveMutBestFirst(M, quietOptions(TT));
    EXPECT_EQ(Best.Stats.BoundEvals, Best.Stats.Generated);
  }
  BnbOptions All = quietOptions();
  All.CollectAllOptimal = true;
  MutResult Seq = solveMutSequential(M, All);
  EXPECT_EQ(Seq.Stats.BoundEvals, Seq.Stats.Generated);
}

// ---------------------------------------------------------------------------
// S2: pruning attribution precedence (documented on ThreeThreeMode).
// ---------------------------------------------------------------------------

TEST(HotLoop, CheapThreeThreeRunsBeforeBoundCheck) {
  // Maxmin-ordered by construction: d(0,1) = 10 is the global maximum.
  // With an impossible upper bound every child dies; under ThirdSpecies
  // the two 3-3-rejected insertions of species 2 must be attributed to
  // the filter (it runs first), with only the 3-3-surviving child left
  // for the bound to kill.
  DistanceMatrix M(3);
  M.set(0, 1, 10.0);
  M.set(0, 2, 4.0);
  M.set(1, 2, 7.0);

  auto branchWith = [&](ThreeThreeMode TT) {
    BnbOptions Options = quietOptions(TT);
    Options.AssumeMaxminOrdered = true;
    Options.InitialUpperBound = 0.0;
    BnbEngine Engine(M, Options);
    BnbStats Stats;
    std::vector<BranchedChild> Children;
    Engine.branch(Engine.rootTopology(), 0.0, Stats, Children);
    EXPECT_TRUE(Children.empty());
    EXPECT_EQ(Stats.Generated, 3u);
    EXPECT_EQ(Stats.BoundEvals, 3u);
    return Stats;
  };

  BnbStats Third = branchWith(ThreeThreeMode::ThirdSpecies);
  EXPECT_EQ(Third.PrunedByThreeThree, 2u);
  EXPECT_EQ(Third.PrunedByBound, 1u);

  // Under AllInsertions the O(k^2) filter stays behind the bound, so the
  // same three dead children are all attributed to the bound.
  BnbStats All = branchWith(ThreeThreeMode::AllInsertions);
  EXPECT_EQ(All.PrunedByThreeThree, 0u);
  EXPECT_EQ(All.PrunedByBound, 3u);

  BnbStats None = branchWith(ThreeThreeMode::None);
  EXPECT_EQ(None.PrunedByThreeThree, 0u);
  EXPECT_EQ(None.PrunedByBound, 3u);
}

// ---------------------------------------------------------------------------
// S3a: arena reuse is invisible to the search.
// ---------------------------------------------------------------------------

TEST(HotLoop, ArenaRecyclesTopologyStorage) {
  TopologyArena Arena(8);
  EXPECT_EQ(Arena.pooled(), 0u);
  EXPECT_EQ(Arena.reuses(), 0u);
  Topology A = Arena.acquire();
  EXPECT_EQ(Arena.reuses(), 0u); // pool was dry: fresh object
  Arena.release(std::move(A));
  EXPECT_EQ(Arena.pooled(), 1u);
  Topology B = Arena.acquire();
  EXPECT_EQ(Arena.reuses(), 1u);
  EXPECT_EQ(Arena.pooled(), 0u);
  Arena.release(std::move(B));
}

TEST(HotLoop, BranchWithArenaMatchesBranchWithout) {
  DistanceMatrix M = hmdnaLikeMatrix(12, 9);
  BnbEngine Engine(M, quietOptions(ThreeThreeMode::ThirdSpecies));
  TopologyArena Arena(Engine.numSpecies());
  BnbStats StatsPlain, StatsArena;
  std::vector<BranchedChild> Plain, Pooled;
  Topology T = Engine.rootTopology();
  // Drive both variants down one best-first path; every level the
  // arena-backed expansion must produce byte-identical children, even
  // though its topologies reuse storage released at earlier levels.
  while (!Engine.isComplete(T)) {
    Engine.branch(T, Engine.initialUpperBound() + 1.0, StatsPlain, Plain);
    Engine.branch(T, Engine.initialUpperBound() + 1.0, StatsArena, Pooled,
                  &Arena);
    ASSERT_EQ(Plain.size(), Pooled.size());
    for (std::size_t I = 0; I < Plain.size(); ++I) {
      EXPECT_EQ(Plain[I].LowerBound, Pooled[I].LowerBound);
      EXPECT_EQ(Plain[I].Node.cost(), Pooled[I].Node.cost());
      EXPECT_EQ(Plain[I].Node.numPlaced(), Pooled[I].Node.numPlaced());
    }
    T = Plain.front().Node;
    // Recycle everything the arena-backed expansion produced.
    for (BranchedChild &BC : Pooled)
      Arena.release(std::move(BC.Node));
  }
  EXPECT_GT(Arena.reuses(), 0u);
}

TEST(HotLoop, RepeatedSolvesOnOneArenaAreIdentical) {
  // The sequential solver owns an arena internally; solving twice in a
  // row (fresh arena each solve) and comparing against a third solve
  // must be byte-identical — storage recycling may never leak into the
  // answer.
  DistanceMatrix M = hardDna(12, 11);
  MutResult First = solveMutSequential(M, quietOptions());
  MutResult Second = solveMutSequential(M, quietOptions());
  EXPECT_EQ(First.Cost, Second.Cost);
  EXPECT_EQ(toNewick(First.Tree), toNewick(Second.Tree));
  EXPECT_EQ(First.Stats.Branched, Second.Stats.Branched);
  EXPECT_EQ(First.Stats.Generated, Second.Stats.Generated);
  EXPECT_EQ(First.Stats.BoundEvals, Second.Stats.BoundEvals);
}

// ---------------------------------------------------------------------------
// S3b: the bitmask maxmin fast path is exactly the generic algorithm.
// ---------------------------------------------------------------------------

TEST(HotLoop, MaskMaxminMatchesGenericOnRandomMatrices) {
  for (int N : {2, 3, 5, 9, 16, 24, 40, 63, 64})
    for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
      EXPECT_EQ(maxminPermutation(uniformRandomMetric(N, Seed)),
                maxminPermutationGeneric(uniformRandomMetric(N, Seed)))
          << "uniform n=" << N << " seed=" << Seed;
      EXPECT_EQ(maxminPermutation(randomUltrametricMatrix(N, Seed)),
                maxminPermutationGeneric(randomUltrametricMatrix(N, Seed)))
          << "ultrametric n=" << N << " seed=" << Seed;
    }
}

TEST(HotLoop, MaskMaxminMatchesGenericUnderHeavyTies) {
  // Quantized distances force ties everywhere; both paths must resolve
  // them identically (lowest index wins on equal keys).
  for (int N : {6, 12, 20, 33, 64})
    for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
      DistanceMatrix M = uniformRandomMetric(N, Seed, 10.0, 14.0);
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; ++J)
          M.set(I, J, std::round(M.at(I, J)));
      EXPECT_EQ(maxminPermutation(M), maxminPermutationGeneric(M))
          << "quantized n=" << N << " seed=" << Seed;
    }
}

// ---------------------------------------------------------------------------
// S3c: threaded solver statistics are deterministic.
// ---------------------------------------------------------------------------

TEST(HotLoop, ThreadedStatsIdenticalAcrossWorkerCounts) {
  // On an ultrametric matrix the UPGMM seed is already optimal, so the
  // upper bound never moves mid-search and every pruning decision is
  // schedule-independent: all counters must agree exactly no matter how
  // many workers share the search.
  for (std::uint64_t Seed : {1ull, 3ull, 9ull}) {
    DistanceMatrix M = randomUltrametricMatrix(24, Seed);
    BnbOptions Options = quietOptions(ThreeThreeMode::ThirdSpecies);
    ParallelMutResult Base = solveMutThreaded(M, 1, Options);
    for (int Workers : {2, 4}) {
      ParallelMutResult R = solveMutThreaded(M, Workers, Options);
      EXPECT_EQ(R.Cost, Base.Cost) << "workers=" << Workers;
      EXPECT_EQ(R.Stats.Branched, Base.Stats.Branched);
      EXPECT_EQ(R.Stats.Generated, Base.Stats.Generated);
      EXPECT_EQ(R.Stats.PrunedByBound, Base.Stats.PrunedByBound);
      EXPECT_EQ(R.Stats.PrunedByThreeThree, Base.Stats.PrunedByThreeThree);
      EXPECT_EQ(R.Stats.BoundEvals, Base.Stats.BoundEvals);
      EXPECT_EQ(R.Stats.UbUpdates, Base.Stats.UbUpdates);
    }
  }
}

TEST(HotLoop, ThreadedBoundEvalInvariantHoldsUnderContention) {
  // Scheduling may reshuffle who expands what, but one-bound-eval-per-
  // generated-child is a per-branching invariant: the merged totals obey
  // it for every worker count, on a search big enough to actually engage
  // the workers and their per-worker arenas.
  DistanceMatrix M = hardDna(16, 7);
  for (int Workers : {1, 2, 4}) {
    ParallelMutResult R =
        solveMutThreaded(M, Workers, quietOptions(ThreeThreeMode::ThirdSpecies));
    EXPECT_EQ(R.Stats.BoundEvals, R.Stats.Generated)
        << "workers=" << Workers;
    EXPECT_GT(R.Stats.PrunedByThreeThree, 0u);
  }
}

} // namespace
