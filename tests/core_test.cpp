//===- tests/core_test.cpp - TreeBuilder facade ------------------*- C++ -*-===//

#include "core/TreeBuilder.h"
#include "matrix/Generators.h"
#include "seq/EvolutionSim.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

const BuildMethod AllMethods[] = {
    BuildMethod::Upgma,           BuildMethod::Upgmm,
    BuildMethod::ExactSequential, BuildMethod::ExactThreaded,
    BuildMethod::MessagePassing,  BuildMethod::SimulatedCluster,
    BuildMethod::CompactSets,
};

} // namespace

TEST(TreeBuilder, EveryMethodProducesAWellFormedTree) {
  DistanceMatrix M = plantedClusterMetric(12, 3);
  for (BuildMethod Method : AllMethods) {
    BuildOptions Options;
    Options.Method = Method;
    BuildOutcome Out = buildTree(M, Options);
    EXPECT_TRUE(Out.Tree.isWellFormed()) << Out.MethodName;
    EXPECT_TRUE(Out.Tree.hasMonotoneHeights()) << Out.MethodName;
    EXPECT_EQ(Out.Tree.numLeaves(), 12) << Out.MethodName;
    EXPECT_NEAR(Out.Cost, Out.Tree.weight(), 1e-9) << Out.MethodName;
    EXPECT_FALSE(Out.MethodName.empty());
  }
}

TEST(TreeBuilder, ExactMethodsAgree) {
  DistanceMatrix M = uniformRandomMetric(10, 9);
  std::vector<double> Costs;
  for (BuildMethod Method :
       {BuildMethod::ExactSequential, BuildMethod::ExactThreaded,
        BuildMethod::MessagePassing, BuildMethod::SimulatedCluster}) {
    BuildOptions Options;
    Options.Method = Method;
    BuildOutcome Out = buildTree(M, Options);
    EXPECT_TRUE(Out.Exact) << methodName(Method);
    Costs.push_back(Out.Cost);
  }
  for (std::size_t I = 1; I < Costs.size(); ++I)
    EXPECT_NEAR(Costs[0], Costs[I], 1e-9);
}

TEST(TreeBuilder, HeuristicsAreMarkedInexact) {
  DistanceMatrix M = uniformRandomMetric(8, 2);
  for (BuildMethod Method :
       {BuildMethod::Upgma, BuildMethod::Upgmm, BuildMethod::CompactSets}) {
    BuildOptions Options;
    Options.Method = Method;
    EXPECT_FALSE(buildTree(M, Options).Exact);
  }
}

TEST(TreeBuilder, CompactSetsReportsPipelineDetails) {
  DistanceMatrix M = plantedClusterMetric(14, 8);
  BuildOptions Options;
  Options.Method = BuildMethod::CompactSets;
  BuildOutcome Out = buildTree(M, Options);
  EXPECT_EQ(Out.MethodName, "compact-sets(max)");
  EXPECT_FALSE(Out.Pipeline.Sets.empty());
  EXPECT_FALSE(Out.Pipeline.Blocks.empty());
}

TEST(TreeBuilder, CondenseModeShowsInName) {
  DistanceMatrix M = plantedClusterMetric(8, 1);
  BuildOptions Options;
  Options.Method = BuildMethod::CompactSets;
  Options.Pipeline.Mode = CondenseMode::Average;
  EXPECT_EQ(buildTree(M, Options).MethodName, "compact-sets(avg)");
  Options.Pipeline.Mode = CondenseMode::Minimum;
  EXPECT_EQ(buildTree(M, Options).MethodName, "compact-sets(min)");
}

TEST(TreeBuilder, SimulatedClusterReportsVirtualTime) {
  DistanceMatrix M = uniformRandomMetric(11, 6);
  BuildOptions Options;
  Options.Method = BuildMethod::SimulatedCluster;
  Options.Cluster.NumNodes = 8;
  BuildOutcome Out = buildTree(M, Options);
  EXPECT_GT(Out.VirtualTime, 0.0);
}

TEST(TreeBuilder, BnbOptionsForwardToPipeline) {
  DistanceMatrix M = plantedClusterMetric(10, 4, 0.05);
  BuildOptions Options;
  Options.Method = BuildMethod::CompactSets;
  Options.Bnb.ThreeThree = ThreeThreeMode::ThirdSpecies;
  BuildOutcome Out = buildTree(M, Options);
  EXPECT_EQ(Out.Tree.numLeaves(), 10);
}

TEST(TreeBuilder, NewickOutputRoundTripsForAllMethods) {
  DistanceMatrix M = hmdnaLikeMatrix(9, 12);
  for (BuildMethod Method : AllMethods) {
    BuildOptions Options;
    Options.Method = Method;
    BuildOutcome Out = buildTree(M, Options);
    auto Back = parseNewick(toNewick(Out.Tree));
    ASSERT_TRUE(Back.has_value()) << Out.MethodName;
    EXPECT_NEAR(Back->weight(), Out.Cost, 1e-6) << Out.MethodName;
  }
}
