//===- tests/bnb_test.cpp - Topology, bounds, sequential B&B ----*- C++ -*-===//

#include "bnb/Engine.h"
#include "bnb/SequentialBnb.h"
#include "bnb/ThreeThree.h"
#include "bnb/Topology.h"
#include "heur/Upgma.h"
#include "matrix/Generators.h"
#include "matrix/MetricUtils.h"
#include "seq/EvolutionSim.h"
#include "tree/RobinsonFoulds.h"
#include "tree/UltrametricFit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <set>

using namespace mutk;

namespace {

/// Exhaustively enumerates every topology (no pruning) and returns the
/// minimum tree weight. Exponential; keep n <= 8.
double bruteForceOptimum(const DistanceMatrix &M) {
  double Best = std::numeric_limits<double>::infinity();
  std::function<void(const Topology &)> Recurse = [&](const Topology &T) {
    if (T.numPlaced() == M.size()) {
      Best = std::min(Best, T.cost());
      return;
    }
    for (int Pos = 0; Pos < T.numNodes(); ++Pos)
      Recurse(T.withNextSpeciesAt(Pos, M));
  };
  Recurse(Topology::initialPair(M));
  return Best;
}

} // namespace

TEST(Topology, InitialPair) {
  DistanceMatrix M(2);
  M.set(0, 1, 8);
  Topology T = Topology::initialPair(M);
  EXPECT_EQ(T.numPlaced(), 2);
  EXPECT_EQ(T.numNodes(), 3);
  EXPECT_DOUBLE_EQ(T.cost(), 8.0); // 2 * h(root) = M[0,1]
  EXPECT_TRUE(T.invariantsHold(M));
}

TEST(Topology, InsertionPositionsCount) {
  DistanceMatrix M = uniformRandomMetric(6, 1);
  Topology T = Topology::initialPair(M);
  // k leaves -> 2k - 1 distinct positions = numNodes().
  for (int K = 2; K < 6; ++K) {
    EXPECT_EQ(T.numNodes(), 2 * K - 1);
    T = T.withNextSpeciesAt(0, M);
  }
  EXPECT_EQ(T.numPlaced(), 6);
}

TEST(Topology, IncrementalHeightsMatchFromScratchFit) {
  DistanceMatrix M = uniformRandomMetric(9, 3);
  // Walk a pseudo-random insertion path and validate at every step.
  Topology T = Topology::initialPair(M);
  std::uint64_t State = 12345;
  while (T.numPlaced() < 9) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    int Pos = static_cast<int>(State % static_cast<std::uint64_t>(T.numNodes()));
    T = T.withNextSpeciesAt(Pos, M);
    EXPECT_TRUE(T.invariantsHold(M))
        << "after inserting species " << T.numPlaced() - 1;
  }
}

TEST(Topology, CostIsMonotoneUnderInsertion) {
  DistanceMatrix M = uniformRandomMetric(8, 5);
  Topology T = Topology::initialPair(M);
  double Last = T.cost();
  while (T.numPlaced() < 8) {
    // Every child must cost at least as much as the parent.
    for (int Pos = 0; Pos < T.numNodes(); ++Pos)
      EXPECT_GE(T.withNextSpeciesAt(Pos, M).cost(), Last - 1e-9);
    T = T.withNextSpeciesAt(T.numNodes() - 1, M);
    Last = T.cost();
  }
}

TEST(Topology, AboveRootInsertionEquivalents) {
  DistanceMatrix M = uniformRandomMetric(4, 9);
  Topology T = Topology::initialPair(M);
  // Position rootIndex() and position numNodes() both mean "above root".
  Topology A = T.withNextSpeciesAt(T.rootIndex(), M);
  Topology B = T.withNextSpeciesAt(T.numNodes(), M);
  EXPECT_DOUBLE_EQ(A.cost(), B.cost());
}

TEST(Topology, LcaAndStrictlyBelow) {
  DistanceMatrix M = uniformRandomMetric(5, 2);
  Topology T = Topology::initialPair(M);
  T = T.withNextSpeciesAt(0, M); // species 2 next to leaf 0
  int Lca02 = T.lcaOf(0, 2);
  int Lca01 = T.lcaOf(0, 1);
  EXPECT_TRUE(T.isStrictlyBelow(Lca02, Lca01));
  EXPECT_FALSE(T.isStrictlyBelow(Lca01, Lca02));
  EXPECT_FALSE(T.isStrictlyBelow(Lca01, Lca01));
}

TEST(Topology, ToPhyloTreeRelabels) {
  DistanceMatrix M = uniformRandomMetric(4, 4);
  Topology T = Topology::initialPair(M);
  T = T.withNextSpeciesAt(0, M);
  T = T.withNextSpeciesAt(1, M);
  PhyloTree Tree = T.toPhyloTree({10, 20, 30, 40});
  std::vector<int> Species = Tree.allSpecies();
  std::sort(Species.begin(), Species.end());
  EXPECT_EQ(Species, (std::vector<int>{10, 20, 30, 40}));
  EXPECT_NEAR(Tree.weight(), T.cost(), 1e-9);
}

TEST(Topology, FromNodesRoundTripsAndValidates) {
  DistanceMatrix M = uniformRandomMetric(6, 7);
  Topology T = Topology::initialPair(M);
  T = T.withNextSpeciesAt(0, M);
  T = T.withNextSpeciesAt(2, M);

  std::vector<Topology::Node> Nodes;
  for (int I = 0; I < T.numNodes(); ++I)
    Nodes.push_back(T.node(I));

  auto Back = Topology::fromNodes(Nodes, T.rootIndex());
  ASSERT_TRUE(Back.has_value());
  EXPECT_DOUBLE_EQ(Back->cost(), T.cost());
  EXPECT_EQ(Back->numPlaced(), T.numPlaced());

  // Corrupt a parent pointer: must be rejected.
  auto Broken = Nodes;
  Broken[0].Parent = static_cast<std::int16_t>(T.rootIndex());
  EXPECT_FALSE(Topology::fromNodes(Broken, T.rootIndex()).has_value());

  // Duplicate species: must be rejected.
  Broken = Nodes;
  for (auto &N : Broken)
    if (N.Leaf == 1) {
      N.Leaf = 0;
      N.Mask = leafBit(0);
    }
  EXPECT_FALSE(Topology::fromNodes(Broken, T.rootIndex()).has_value());

  // Wrong root: must be rejected.
  EXPECT_FALSE(Topology::fromNodes(Nodes, 0).has_value());
}

TEST(Engine, LowerBoundIsAdmissible) {
  // LB of a partial topology never exceeds the cost of any completion.
  DistanceMatrix M = uniformRandomMetric(7, 11);
  BnbOptions Options;
  BnbEngine Engine(M, Options);

  std::function<void(const Topology &, double)> Check =
      [&](const Topology &T, double AncestorLb) {
        double Lb = Engine.lowerBound(T);
        EXPECT_GE(Lb, AncestorLb - 1e-9) << "LB must not decrease";
        if (Engine.isComplete(T)) {
          EXPECT_LE(Lb, T.cost() + 1e-9);
          return;
        }
        for (int Pos = 0; Pos < T.numNodes(); ++Pos)
          Check(T.withNextSpeciesAt(Pos, Engine.relabeledMatrix()), Lb);
      };
  Check(Engine.rootTopology(), 0.0);
}

TEST(Engine, InitialUpperBoundIsUpgmm) {
  DistanceMatrix M = uniformRandomMetric(10, 13);
  BnbEngine Engine(M, {});
  EXPECT_DOUBLE_EQ(Engine.initialUpperBound(), upgmmUpperBound(M));
  EXPECT_TRUE(Engine.initialTree().dominatesMatrix(M));
}

TEST(Engine, RespectsProvidedUpperBound) {
  DistanceMatrix M = uniformRandomMetric(6, 17);
  BnbOptions Options;
  Options.InitialUpperBound = 1.0; // absurdly tight
  BnbEngine Engine(M, Options);
  EXPECT_DOUBLE_EQ(Engine.initialUpperBound(), 1.0);
}

TEST(SequentialBnb, TrivialSizes) {
  DistanceMatrix M0(0);
  MutResult R0 = solveMutSequential(M0);
  EXPECT_EQ(R0.Cost, 0.0);

  DistanceMatrix M1(1);
  MutResult R1 = solveMutSequential(M1);
  EXPECT_EQ(R1.Tree.numLeaves(), 1);

  DistanceMatrix M2(2);
  M2.set(0, 1, 4);
  MutResult R2 = solveMutSequential(M2);
  EXPECT_DOUBLE_EQ(R2.Cost, 4.0);
  EXPECT_TRUE(R2.Stats.Complete);
}

TEST(SequentialBnb, MatchesBruteForce) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(7, Seed);
    MutResult R = solveMutSequential(M);
    EXPECT_NEAR(R.Cost, bruteForceOptimum(M), 1e-9) << "seed " << Seed;
    EXPECT_TRUE(R.Stats.Complete);
    EXPECT_TRUE(R.Tree.dominatesMatrix(M));
    EXPECT_TRUE(R.Tree.hasMonotoneHeights());
    EXPECT_NEAR(R.Tree.weight(), R.Cost, 1e-9);
  }
}

TEST(SequentialBnb, NeverWorseThanUpgmm) {
  for (std::uint64_t Seed = 20; Seed < 26; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, Seed);
    MutResult R = solveMutSequential(M);
    EXPECT_LE(R.Cost, upgmmUpperBound(M) + 1e-9);
  }
}

TEST(SequentialBnb, UltrametricInputRealizedExactly) {
  // For an ultrametric matrix the MUT realizes every distance exactly.
  DistanceMatrix M = randomUltrametricMatrix(9, 31);
  MutResult R = solveMutSequential(M);
  EXPECT_TRUE(R.Tree.inducedMatrix().approxEquals(M, 1e-9));
  // And UPGMM is already optimal there.
  EXPECT_NEAR(R.Cost, upgmmUpperBound(M), 1e-9);
}

TEST(SequentialBnb, HmdnaWorkloadSolvesAndDominates) {
  DistanceMatrix M = hmdnaLikeMatrix(10, 5);
  MutResult R = solveMutSequential(M);
  EXPECT_TRUE(R.Stats.Complete);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

TEST(SequentialBnb, NodeLimitYieldsIncomplete) {
  DistanceMatrix M = uniformRandomMetric(14, 3);
  BnbOptions Options;
  Options.MaxBranchedNodes = 5;
  MutResult R = solveMutSequential(M, Options);
  EXPECT_FALSE(R.Stats.Complete);
  EXPECT_LE(R.Stats.Branched, 5u);
  // Still returns a feasible tree (at worst the UPGMM seed).
  EXPECT_TRUE(R.Tree.dominatesMatrix(M));
}

TEST(SequentialBnb, CollectAllOptimalContainsBestAndIsConsistent) {
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(7, Seed);
    BnbOptions Options;
    Options.CollectAllOptimal = true;
    MutResult R = solveMutSequential(M, Options);
    ASSERT_FALSE(R.AllOptimal.empty());
    for (const PhyloTree &T : R.AllOptimal) {
      EXPECT_NEAR(T.weight(), R.Cost, 1e-9);
      EXPECT_TRUE(T.dominatesMatrix(M));
    }
  }
}

TEST(SequentialBnb, EquilateralHasManyOptima) {
  // All pairwise distances equal: every topology costs the same, so the
  // optimal set is the full count of leaf-labeled binary trees:
  // (2n-3)!! = 15 for n = 4.
  DistanceMatrix M(4);
  for (int I = 0; I < 4; ++I)
    for (int J = I + 1; J < 4; ++J)
      M.set(I, J, 2.0);
  BnbOptions Options;
  Options.CollectAllOptimal = true;
  MutResult R = solveMutSequential(M, Options);
  EXPECT_EQ(R.AllOptimal.size(), 15u);
}

TEST(SequentialBnb, StatsAreCoherent) {
  // Some instances prune everything at the root (UPGMM already optimal
  // with a tight LB); sweep a few seeds and require at least one real
  // search, with coherent counters whenever branching happened.
  bool SawSearch = false;
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    MutResult R = solveMutSequential(M);
    if (R.Stats.Branched == 0)
      continue;
    SawSearch = true;
    EXPECT_GT(R.Stats.Generated, 0u);
    // Every branching of a k-leaf topology generates 2k - 1 children;
    // the smallest branching (k = 2) yields 3.
    EXPECT_GE(R.Stats.Generated, 3 * R.Stats.Branched);
  }
  EXPECT_TRUE(SawSearch);
}

TEST(ThreeThree, InsertionCheckOnConsistentTriple) {
  // M: 0 and 1 are close, 2 is far from both.
  DistanceMatrix M(3);
  M.set(0, 1, 2);
  M.set(0, 2, 8);
  M.set(1, 2, 8);
  Topology T = Topology::initialPair(M);
  // Insert species 2 next to leaf 0: LCA(0,2) below LCA(0,1)?? That
  // contradicts "0,1 are closest".
  Topology Bad = T.withNextSpeciesAt(0, M);
  EXPECT_FALSE(insertionRespectsThreeThree(Bad, M, 2));
  // Insert above the root: LCA(0,1) stays below: consistent.
  Topology Good = T.withNextSpeciesAt(T.rootIndex(), M);
  EXPECT_TRUE(insertionRespectsThreeThree(Good, M, 2));
}

TEST(ThreeThree, TiesImposeNoConstraint) {
  DistanceMatrix M(3);
  M.set(0, 1, 4);
  M.set(0, 2, 4);
  M.set(1, 2, 4);
  Topology T = Topology::initialPair(M);
  for (int Pos = 0; Pos < T.numNodes(); ++Pos)
    EXPECT_TRUE(insertionRespectsThreeThree(T.withNextSpeciesAt(Pos, M), M, 2));
}

TEST(ThreeThree, ModesPreserveOptimalCostOnStructuredData) {
  // The HPCAsia paper observed that 3-3 pruned results are a subset with
  // the same optimum; on tree-derived data the relation truly holds.
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(10, Seed, 0.05);
    MutResult Plain = solveMutSequential(M);
    BnbOptions Third;
    Third.ThreeThree = ThreeThreeMode::ThirdSpecies;
    MutResult WithThird = solveMutSequential(M, Third);
    EXPECT_NEAR(Plain.Cost, WithThird.Cost, 1e-9) << "seed " << Seed;
    EXPECT_LE(WithThird.Stats.Branched, Plain.Stats.Branched);

    BnbOptions All;
    All.ThreeThree = ThreeThreeMode::AllInsertions;
    MutResult WithAll = solveMutSequential(M, All);
    // AllInsertions is a heuristic: never better than optimal, and the
    // tree must still be feasible.
    EXPECT_GE(WithAll.Cost, Plain.Cost - 1e-9);
    EXPECT_TRUE(WithAll.Tree.dominatesMatrix(M));
  }
}

TEST(ThreeThree, OptimalSetWithThirdSpeciesIsSubsetOfPlain) {
  // HPCAsia: "the result trees with 3-3 relationship are a subset of
  // result without 3-3 relationship". Compare the full optimal sets via
  // their clade families.
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(8, Seed, 0.1);
    BnbOptions Plain;
    Plain.CollectAllOptimal = true;
    MutResult All = solveMutSequential(M, Plain);

    BnbOptions Third = Plain;
    Third.ThreeThree = ThreeThreeMode::ThirdSpecies;
    MutResult Constrained = solveMutSequential(M, Third);

    auto canon = [](const std::vector<PhyloTree> &Trees) {
      std::set<std::set<std::vector<int>>> Result;
      for (const PhyloTree &T : Trees)
        Result.insert(nontrivialClades(T));
      return Result;
    };
    auto AllSet = canon(All.AllOptimal);
    auto ConstrainedSet = canon(Constrained.AllOptimal);
    EXPECT_FALSE(ConstrainedSet.empty());
    for (const auto &Clades : ConstrainedSet)
      EXPECT_TRUE(AllSet.count(Clades)) << "seed " << Seed;
  }
}

TEST(ThreeThree, ZeroContradictionsOnUltrametricTree) {
  DistanceMatrix M = randomUltrametricMatrix(10, 3);
  MutResult R = solveMutSequential(M);
  EXPECT_EQ(countThreeThreeContradictions(R.Tree, M), 0);
}

TEST(ThreeThree, CountsContradictionsOnMismatchedTree) {
  // Matrix says (0,1) closest; tree pairs (0,2) instead.
  DistanceMatrix M(3);
  M.set(0, 1, 2);
  M.set(0, 2, 8);
  M.set(1, 2, 8);
  PhyloTree T;
  int L0 = T.addLeaf(0);
  int L2 = T.addLeaf(2);
  int X = T.addInternal(L0, L2, 4);
  int L1 = T.addLeaf(1);
  T.addInternal(X, L1, 4);
  EXPECT_EQ(countThreeThreeContradictions(T, M), 1);
}

// Property sweep: exact solver beats brute force across workloads.
class BnbProperty : public testing::TestWithParam<int> {};

TEST_P(BnbProperty, OptimalAcrossWorkloads) {
  int N = GetParam();
  for (std::uint64_t Seed = 60; Seed < 62; ++Seed) {
    for (const DistanceMatrix &M :
         {uniformRandomMetric(N, Seed), plantedClusterMetric(N, Seed),
          hmdnaLikeMatrix(N, Seed)}) {
      MutResult R = solveMutSequential(M);
      EXPECT_NEAR(R.Cost, bruteForceOptimum(M), 1e-9);
      EXPECT_TRUE(R.Tree.dominatesMatrix(M));
      EXPECT_TRUE(R.Tree.isWellFormed());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BnbProperty, testing::Values(2, 3, 4, 5, 6, 7));
