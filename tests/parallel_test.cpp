//===- tests/parallel_test.cpp - Threaded B&B -------------------*- C++ -*-===//

#include "matrix/Generators.h"
#include "parallel/ThreadedBnb.h"
#include "seq/EvolutionSim.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(ThreadedBnb, TrivialSizes) {
  DistanceMatrix M1(1);
  ParallelMutResult R1 = solveMutThreaded(M1, 4);
  EXPECT_EQ(R1.Tree.numLeaves(), 1);

  DistanceMatrix M2(2);
  M2.set(0, 1, 6);
  ParallelMutResult R2 = solveMutThreaded(M2, 4);
  EXPECT_DOUBLE_EQ(R2.Cost, 6.0);
}

TEST(ThreadedBnb, MatchesSequentialCost) {
  for (std::uint64_t Seed = 0; Seed < 5; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    double Sequential = solveMutSequential(M).Cost;
    for (int Workers : {1, 2, 4, 7}) {
      ParallelMutResult R = solveMutThreaded(M, Workers);
      EXPECT_NEAR(R.Cost, Sequential, 1e-9)
          << "seed " << Seed << " workers " << Workers;
      EXPECT_TRUE(R.Stats.Complete);
      EXPECT_TRUE(R.Tree.dominatesMatrix(M));
      EXPECT_EQ(static_cast<int>(R.Workers.size()), Workers);
    }
  }
}

TEST(ThreadedBnb, MatchesSequentialOnHmdna) {
  DistanceMatrix M = hmdnaLikeMatrix(12, 9);
  double Sequential = solveMutSequential(M).Cost;
  ParallelMutResult R = solveMutThreaded(M, 4);
  EXPECT_NEAR(R.Cost, Sequential, 1e-9);
}

TEST(ThreadedBnb, ThreeThreeModesWork) {
  DistanceMatrix M = plantedClusterMetric(10, 2, 0.05);
  double Sequential = solveMutSequential(M).Cost;
  BnbOptions Options;
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  ParallelMutResult R = solveMutThreaded(M, 4, Options);
  EXPECT_NEAR(R.Cost, Sequential, 1e-9);
}

TEST(ThreadedBnb, NodeLimitTerminates) {
  DistanceMatrix M = uniformRandomMetric(16, 1);
  BnbOptions Options;
  Options.MaxBranchedNodes = 50;
  ParallelMutResult R = solveMutThreaded(M, 4, Options);
  EXPECT_FALSE(R.Stats.Complete);
  EXPECT_TRUE(R.Tree.dominatesMatrix(M)); // UPGMM fallback at worst
}

TEST(ThreadedBnb, WorkerStatsAccountBranches) {
  DistanceMatrix M = uniformRandomMetric(12, 4);
  ParallelMutResult R = solveMutThreaded(M, 3);
  std::uint64_t WorkerTotal = 0;
  for (const WorkerStats &W : R.Workers)
    WorkerTotal += W.Branched;
  // Master branches a few seeding nodes; workers do the rest.
  EXPECT_LE(WorkerTotal, R.Stats.Branched);
  EXPECT_GT(R.Stats.Branched, 0u);
}

TEST(ThreadedBnb, ManyWorkersOnTinyProblem) {
  // More workers than frontier nodes: must still terminate and be right.
  DistanceMatrix M = uniformRandomMetric(5, 6);
  double Sequential = solveMutSequential(M).Cost;
  ParallelMutResult R = solveMutThreaded(M, 12);
  EXPECT_NEAR(R.Cost, Sequential, 1e-9);
}

class ThreadedProperty : public testing::TestWithParam<int> {};

TEST_P(ThreadedProperty, CostEqualsSequentialAcrossSizes) {
  int N = GetParam();
  DistanceMatrix M = plantedClusterMetric(N, 123);
  double Sequential = solveMutSequential(M).Cost;
  ParallelMutResult R = solveMutThreaded(M, 4);
  EXPECT_NEAR(R.Cost, Sequential, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThreadedProperty,
                         testing::Values(2, 3, 5, 8, 11, 13));
