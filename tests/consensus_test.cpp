//===- tests/consensus_test.cpp - Majority-rule consensus -------*- C++ -*-===//

#include "bnb/SequentialBnb.h"
#include "matrix/Generators.h"
#include "tree/Consensus.h"
#include "tree/RobinsonFoulds.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

PhyloTree twoCherries() {
  PhyloTree T;
  int A = T.addInternal(T.addLeaf(0), T.addLeaf(1), 1);
  int B = T.addInternal(T.addLeaf(2), T.addLeaf(3), 1);
  T.addInternal(A, B, 2);
  return T;
}

PhyloTree caterpillar() {
  PhyloTree T;
  int Acc = T.addInternal(T.addLeaf(0), T.addLeaf(1), 1);
  Acc = T.addInternal(Acc, T.addLeaf(2), 2);
  T.addInternal(Acc, T.addLeaf(3), 3);
  return T;
}

} // namespace

TEST(Consensus, IdenticalTreesKeepAllClades) {
  std::vector<PhyloTree> Trees = {twoCherries(), twoCherries(),
                                  twoCherries()};
  ConsensusResult R = majorityConsensus(Trees);
  EXPECT_EQ(R.NumTrees, 3);
  ASSERT_EQ(R.Clades.size(), 2u);
  for (const SupportedClade &Clade : R.Clades)
    EXPECT_DOUBLE_EQ(Clade.Support, 1.0);
  EXPECT_TRUE(R.containsClade({0, 1}));
  EXPECT_TRUE(R.containsClade({2, 3}));
}

TEST(Consensus, MajorityCladeSurvivesMinorityDisagreement) {
  // Two trees agree on {0,1}; the caterpillar also has {0,1} plus
  // {0,1,2}, which only reaches 1/3 support.
  std::vector<PhyloTree> Trees = {twoCherries(), twoCherries(),
                                  caterpillar()};
  ConsensusResult R = majorityConsensus(Trees);
  EXPECT_TRUE(R.containsClade({0, 1}));
  EXPECT_TRUE(R.containsClade({2, 3})); // 2/3 support
  EXPECT_FALSE(R.containsClade({0, 1, 2}));
  for (const SupportedClade &Clade : R.Clades)
    EXPECT_GT(Clade.Support, 0.5);
}

TEST(Consensus, SingleTreeIsItsOwnConsensus) {
  std::vector<PhyloTree> Trees = {caterpillar()};
  ConsensusResult R = majorityConsensus(Trees);
  EXPECT_EQ(R.Clades.size(), nontrivialClades(Trees[0]).size());
}

TEST(Consensus, EquilateralOptimaHaveEmptyConsensus) {
  // All 15 topologies over 4 species tie on the equilateral matrix;
  // every clade appears in a minority of them, so strict majority rule
  // returns no clades — the honest summary of total ambiguity.
  DistanceMatrix M(4);
  for (int I = 0; I < 4; ++I)
    for (int J = I + 1; J < 4; ++J)
      M.set(I, J, 2.0);
  BnbOptions Options;
  Options.CollectAllOptimal = true;
  MutResult R = solveMutSequential(M, Options);
  ASSERT_EQ(R.AllOptimal.size(), 15u);
  ConsensusResult C = majorityConsensus(R.AllOptimal);
  EXPECT_TRUE(C.Clades.empty());
}

TEST(Consensus, ThresholdZeroKeepsEveryObservedClade) {
  std::vector<PhyloTree> Trees = {twoCherries(), caterpillar()};
  ConsensusResult R = majorityConsensus(Trees, 0.0);
  // Union of both trees' clades: {0,1} (shared), {2,3}, {0,1,2}.
  EXPECT_EQ(R.Clades.size(), 3u);
}

TEST(Consensus, LargestCladesFirst) {
  std::vector<PhyloTree> Trees = {caterpillar()};
  ConsensusResult R = majorityConsensus(Trees);
  for (std::size_t I = 1; I < R.Clades.size(); ++I)
    EXPECT_GE(R.Clades[I - 1].Species.size(), R.Clades[I].Species.size());
}

TEST(Consensus, OptimalSetOfStructuredInstanceIsDecisive) {
  // A strict ultrametric instance has a single optimal topology: the
  // consensus of the collected optima carries full support everywhere.
  DistanceMatrix M = randomUltrametricMatrix(8, 3);
  BnbOptions Options;
  Options.CollectAllOptimal = true;
  MutResult R = solveMutSequential(M, Options);
  ASSERT_FALSE(R.AllOptimal.empty());
  ConsensusResult C = majorityConsensus(R.AllOptimal);
  for (const SupportedClade &Clade : C.Clades)
    EXPECT_DOUBLE_EQ(Clade.Support, 1.0);
  EXPECT_EQ(C.Clades.size(), 6u); // n - 2 nontrivial clades
}

TEST(ImprovedUpperBound, NeverIncreasesBranchingOnHardInstances) {
  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(14, Seed);
    MutResult Plain = solveMutSequential(M);
    BnbOptions Options;
    Options.ImproveInitialUpperBound = true;
    MutResult Seeded = solveMutSequential(M, Options);
    EXPECT_NEAR(Plain.Cost, Seeded.Cost, 1e-9) << "seed " << Seed;
    EXPECT_LE(Seeded.Stats.Branched, Plain.Stats.Branched)
        << "seed " << Seed;
  }
}
