//===- tests/matrix_test.cpp - DistanceMatrix, metric utils, IO -*- C++ -*-===//

#include "matrix/Condense.h"
#include "matrix/DistanceMatrix.h"
#include "matrix/Generators.h"
#include "matrix/MatrixIO.h"
#include "matrix/MetricUtils.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

/// The paper-style worked example (see examples/compact_sets_tour.cpp):
/// 6 species whose MST and compact sets match the PaCT paper's Figure 3-5
/// structure.
DistanceMatrix paperExample() {
  DistanceMatrix M(6);
  M.set(0, 1, 3);
  M.set(0, 2, 1);
  M.set(0, 3, 9);
  M.set(0, 4, 4.5);
  M.set(0, 5, 9);
  M.set(1, 2, 3.5);
  M.set(1, 3, 9);
  M.set(1, 4, 4.5);
  M.set(1, 5, 9);
  M.set(2, 3, 9);
  M.set(2, 4, 4);
  M.set(2, 5, 9);
  M.set(3, 4, 6);
  M.set(3, 5, 2);
  M.set(4, 5, 5);
  return M;
}

} // namespace

TEST(DistanceMatrix, ZeroInitializedWithDefaultNames) {
  DistanceMatrix M(3);
  EXPECT_EQ(M.size(), 3);
  EXPECT_EQ(M.at(0, 2), 0.0);
  EXPECT_EQ(M.name(0), "s0");
  EXPECT_EQ(M.name(2), "s2");
}

TEST(DistanceMatrix, SetIsSymmetric) {
  DistanceMatrix M(4);
  M.set(1, 3, 7.5);
  EXPECT_EQ(M.at(1, 3), 7.5);
  EXPECT_EQ(M.at(3, 1), 7.5);
}

TEST(DistanceMatrix, PermutedReordersRowsAndNames) {
  DistanceMatrix M(3);
  M.set(0, 1, 1);
  M.set(0, 2, 2);
  M.set(1, 2, 3);
  M.setName(0, "a");
  M.setName(1, "b");
  M.setName(2, "c");
  DistanceMatrix P = M.permuted({2, 0, 1});
  EXPECT_EQ(P.name(0), "c");
  EXPECT_EQ(P.name(1), "a");
  EXPECT_EQ(P.at(0, 1), 2.0); // old (2, 0)
  EXPECT_EQ(P.at(0, 2), 3.0); // old (2, 1)
  EXPECT_EQ(P.at(1, 2), 1.0); // old (0, 1)
}

TEST(DistanceMatrix, RestrictedToKeepsSubmatrix) {
  DistanceMatrix M = paperExample();
  DistanceMatrix R = M.restrictedTo({0, 2, 4});
  EXPECT_EQ(R.size(), 3);
  EXPECT_EQ(R.at(0, 1), M.at(0, 2));
  EXPECT_EQ(R.at(0, 2), M.at(0, 4));
  EXPECT_EQ(R.at(1, 2), M.at(2, 4));
}

TEST(DistanceMatrix, MinMaxEntry) {
  DistanceMatrix M = paperExample();
  EXPECT_EQ(M.maxEntry(), 9.0);
  EXPECT_EQ(M.minEntry(), 1.0);
}

TEST(DistanceMatrix, ApproxEquals) {
  DistanceMatrix A = paperExample();
  DistanceMatrix B = paperExample();
  EXPECT_TRUE(A.approxEquals(B, 1e-12));
  B.set(0, 1, 3.0001);
  EXPECT_FALSE(A.approxEquals(B, 1e-6));
  EXPECT_TRUE(A.approxEquals(B, 1e-3));
}

TEST(MetricUtils, PaperExampleIsMetric) {
  EXPECT_TRUE(isMetric(paperExample()));
  EXPECT_TRUE(hasPositiveDistances(paperExample()));
}

TEST(MetricUtils, DetectsTriangleViolation) {
  DistanceMatrix M(3);
  M.set(0, 1, 1);
  M.set(1, 2, 1);
  M.set(0, 2, 10); // 10 > 1 + 1
  auto V = findMetricViolation(M);
  ASSERT_TRUE(V.has_value());
  EXPECT_GT(V->Slack, 7.9);
  EXPECT_FALSE(isMetric(M));
}

TEST(MetricUtils, MetricClosureRepairsViolations) {
  DistanceMatrix M(4);
  M.set(0, 1, 1);
  M.set(1, 2, 1);
  M.set(2, 3, 1);
  M.set(0, 2, 10);
  M.set(1, 3, 10);
  M.set(0, 3, 10);
  DistanceMatrix C = metricClosure(M);
  EXPECT_TRUE(isMetric(C));
  EXPECT_EQ(C.at(0, 2), 2.0);
  EXPECT_EQ(C.at(0, 3), 3.0);
  // Entries never grow.
  for (int I = 0; I < 4; ++I)
    for (int J = I + 1; J < 4; ++J)
      EXPECT_LE(C.at(I, J), M.at(I, J));
}

TEST(MetricUtils, UltrametricPredicate) {
  // A valid ultrametric: two tight pairs joined at a higher level.
  DistanceMatrix U(4);
  U.set(0, 1, 2);
  U.set(2, 3, 4);
  for (int I : {0, 1})
    for (int J : {2, 3})
      U.set(I, J, 10);
  EXPECT_TRUE(isUltrametric(U));
  EXPECT_TRUE(isMetric(U));

  U.set(0, 1, 11); // now max(M[0,2], M[1,2]) = 10 < 11
  EXPECT_FALSE(isUltrametric(U));
  auto V = findUltrametricViolation(U);
  ASSERT_TRUE(V.has_value());
}

TEST(MetricUtils, MaxminPermutationStartsWithFarthestPair) {
  DistanceMatrix M = paperExample();
  std::vector<int> Perm = maxminPermutation(M);
  ASSERT_EQ(Perm.size(), 6u);
  EXPECT_EQ(M.at(Perm[0], Perm[1]), M.maxEntry());
  EXPECT_TRUE(isMaxminPermutation(M, Perm));
}

TEST(MetricUtils, MaxminPermutationRejectsBadOrder) {
  DistanceMatrix M = paperExample();
  // 0,2 is the *closest* pair: cannot start a maxmin permutation.
  EXPECT_FALSE(isMaxminPermutation(M, {0, 2, 1, 3, 4, 5}));
}

TEST(MetricUtils, MaxminPermutationTinySizes) {
  DistanceMatrix M1(1);
  EXPECT_EQ(maxminPermutation(M1), std::vector<int>{0});
  DistanceMatrix M2(2);
  M2.set(0, 1, 5);
  EXPECT_EQ(maxminPermutation(M2).size(), 2u);
}

TEST(Generators, UniformRandomMetricIsMetric) {
  for (std::uint64_t Seed : {1u, 2u, 3u}) {
    DistanceMatrix M = uniformRandomMetric(15, Seed);
    EXPECT_TRUE(isMetric(M)) << "seed " << Seed;
    EXPECT_TRUE(hasPositiveDistances(M));
  }
}

TEST(Generators, UniformRandomMetricDeterministic) {
  DistanceMatrix A = uniformRandomMetric(10, 99);
  DistanceMatrix B = uniformRandomMetric(10, 99);
  EXPECT_TRUE(A.approxEquals(B, 0.0));
}

TEST(Generators, RandomUltrametricMatrixIsUltrametric) {
  for (std::uint64_t Seed : {5u, 6u, 7u}) {
    DistanceMatrix M = randomUltrametricMatrix(20, Seed);
    EXPECT_TRUE(isUltrametric(M)) << "seed " << Seed;
    EXPECT_TRUE(isMetric(M)) << "seed " << Seed;
  }
}

TEST(Generators, PlantedClusterMetricIsMetricButNotUltrametric) {
  DistanceMatrix M = plantedClusterMetric(20, 11, /*Jitter=*/0.15);
  EXPECT_TRUE(isMetric(M));
  // With this much jitter the exact ultrametric property is destroyed.
  EXPECT_FALSE(isUltrametric(M, 1e-9));
}

TEST(Generators, ScaledToMaxHitsTarget) {
  DistanceMatrix M = uniformRandomMetric(8, 3);
  DistanceMatrix S = scaledToMax(M, 100.0);
  EXPECT_NEAR(S.maxEntry(), 100.0, 1e-9);
  EXPECT_TRUE(isMetric(S));
}

TEST(Condense, PartitionPredicate) {
  EXPECT_TRUE(isPartition({{0, 2}, {1}}, 3));
  EXPECT_FALSE(isPartition({{0}, {1}}, 3));         // missing 2
  EXPECT_FALSE(isPartition({{0, 1}, {1, 2}}, 3));   // overlap
  EXPECT_FALSE(isPartition({{0}, {}, {1, 2}}, 3));  // empty block
  EXPECT_FALSE(isPartition({{0, 3}, {1, 2}}, 3));   // out of range
}

TEST(Condense, MaximumMatchesPaperExample) {
  // Paper §3.1: condensing C4 = {0,1,2,5-ish} — here we condense the
  // worked example's C4 = {0,1,2,4} into blocks {0,1,2} and {4}.
  DistanceMatrix M = paperExample();
  DistanceMatrix C = condense(M.restrictedTo({0, 1, 2, 4}),
                              {{0, 1, 2}, {3}}, CondenseMode::Maximum);
  EXPECT_EQ(C.size(), 2);
  EXPECT_EQ(C.at(0, 1), 4.5); // max(4.5, 4.5, 4)
}

TEST(Condense, AllThreeModes) {
  DistanceMatrix M(4);
  M.set(0, 1, 1);
  M.set(0, 2, 2);
  M.set(0, 3, 4);
  M.set(1, 2, 6);
  M.set(1, 3, 8);
  M.set(2, 3, 1);
  std::vector<std::vector<int>> Blocks = {{0, 1}, {2, 3}};
  EXPECT_EQ(condense(M, Blocks, CondenseMode::Maximum).at(0, 1), 8.0);
  EXPECT_EQ(condense(M, Blocks, CondenseMode::Minimum).at(0, 1), 2.0);
  EXPECT_EQ(condense(M, Blocks, CondenseMode::Average).at(0, 1), 5.0);
}

TEST(Condense, BlockNaming) {
  DistanceMatrix M(3);
  M.setName(2, "orang");
  M.set(0, 1, 2);
  M.set(0, 2, 3);
  M.set(1, 2, 3);
  DistanceMatrix C = condense(M, {{0, 1}, {2}}, CondenseMode::Maximum);
  EXPECT_EQ(C.name(0), "C0");     // multi-species block
  EXPECT_EQ(C.name(1), "orang"); // singleton keeps its name
}

TEST(MatrixIO, RoundTrip) {
  DistanceMatrix M = paperExample();
  M.setName(0, "human");
  auto Parsed = matrixFromString(matrixToString(M));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(M.approxEquals(*Parsed, 1e-12));
  EXPECT_EQ(Parsed->name(0), "human");
}

TEST(MatrixIO, RejectsAsymmetric) {
  std::string Text = "2\na 0 1\nb 2 0\n";
  std::string Error;
  EXPECT_FALSE(matrixFromString(Text, &Error).has_value());
  EXPECT_NE(Error.find("asymmetric"), std::string::npos);
}

TEST(MatrixIO, RejectsNonzeroDiagonal) {
  std::string Text = "2\na 1 2\nb 2 0\n";
  std::string Error;
  EXPECT_FALSE(matrixFromString(Text, &Error).has_value());
  EXPECT_NE(Error.find("diagonal"), std::string::npos);
}

TEST(MatrixIO, RejectsTruncatedInput) {
  std::string Error;
  EXPECT_FALSE(matrixFromString("3\na 0 1 2\n", &Error).has_value());
  EXPECT_FALSE(matrixFromString("", &Error).has_value());
}

TEST(MatrixIO, RejectsTruncatedRow) {
  // Row "b" ends one distance short; the parser must not read row "c"'s
  // name as the missing number or silently zero-fill.
  std::string Error;
  EXPECT_FALSE(
      matrixFromString("3\na 0 1 2\nb 1 0\nc 2 1 0\n", &Error).has_value());
  EXPECT_NE(Error.find("entry"), std::string::npos);
}

TEST(MatrixIO, RejectsNonNumericToken) {
  std::string Error;
  EXPECT_FALSE(matrixFromString("2\na 0 oops\nb 1 0\n", &Error).has_value());
  EXPECT_NE(Error.find("entry"), std::string::npos);
  // Non-numeric species count is also malformed, not zero species.
  EXPECT_FALSE(matrixFromString("two\na 0\n", &Error).has_value());
  EXPECT_NE(Error.find("count"), std::string::npos);
}

TEST(MatrixIO, RejectsNegativeCount) {
  std::string Error;
  EXPECT_FALSE(matrixFromString("-1\n", &Error).has_value());
  EXPECT_NE(Error.find("negative"), std::string::npos);
}

TEST(MatrixIO, ParsesEmptyAndSingletonMatrices) {
  // n = 0 and n = 1 are degenerate but well-formed inputs.
  auto Empty = matrixFromString("0\n");
  ASSERT_TRUE(Empty.has_value());
  EXPECT_EQ(Empty->size(), 0);

  auto One = matrixFromString("1\nonly 0\n");
  ASSERT_TRUE(One.has_value());
  EXPECT_EQ(One->size(), 1);
  EXPECT_EQ(One->name(0), "only");

  // ...but a singleton with a nonzero self-distance is still rejected.
  std::string Error;
  EXPECT_FALSE(matrixFromString("1\nonly 7\n", &Error).has_value());
  EXPECT_NE(Error.find("diagonal"), std::string::npos);
}

TEST(MatrixIO, AcceptsCrlfLineEndings) {
  // A matrix saved on Windows carries \r\n terminators; it must parse
  // identically to its Unix twin, names unpolluted by the \r.
  auto Unix = matrixFromString("2\na 0 1\nb 1 0\n");
  auto Crlf = matrixFromString("2\r\na 0 1\r\nb 1 0\r\n");
  ASSERT_TRUE(Unix.has_value());
  ASSERT_TRUE(Crlf.has_value());
  EXPECT_TRUE(Unix->approxEquals(*Crlf, 0.0));
  EXPECT_EQ(Crlf->name(0), "a");
  EXPECT_EQ(Crlf->name(1), "b");
}

TEST(MatrixIO, AcceptsBlankLinesAndTrailingWhitespace) {
  // Blank lines (even interior ones) and trailing spaces/tabs are
  // formatting noise, not data.
  auto Parsed =
      matrixFromString("\n2  \n\na 0 1\t\n\r\n\nb 1 0   \n\n\r\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->size(), 2);
  EXPECT_EQ(Parsed->at(0, 1), 1.0);
}

TEST(MatrixIO, RejectsExtraTokensOnRow) {
  // One value too many used to be absorbed as the *next* row's name,
  // producing a misleading error far from the actual defect.
  std::string Error;
  EXPECT_FALSE(
      matrixFromString("2\na 0 1 9\nb 1 0\n", &Error).has_value());
  EXPECT_NE(Error.find("after row 0"), std::string::npos);
}

TEST(MatrixIO, RejectsTrailingGarbage) {
  std::string Error;
  EXPECT_FALSE(
      matrixFromString("2\na 0 1\nb 1 0\nextra stuff\n", &Error).has_value());
  EXPECT_NE(Error.find("after last row"), std::string::npos);
}

TEST(MatrixIO, RejectsExtraTokenAfterCount) {
  std::string Error;
  EXPECT_FALSE(matrixFromString("2 junk\na 0 1\nb 1 0\n", &Error).has_value());
  EXPECT_NE(Error.find("after species count"), std::string::npos);
}

TEST(MatrixIO, RejectsNumericPrefixToken) {
  // "1.5x" parses as 1.5 under operator>>-style extraction; the whole
  // token must be numeric.
  std::string Error;
  EXPECT_FALSE(matrixFromString("2\na 0 1.5x\nb 1.5 0\n", &Error).has_value());
  EXPECT_NE(Error.find("bad entry"), std::string::npos);
}

TEST(MatrixIO, FileRoundTrip) {
  DistanceMatrix M = uniformRandomMetric(7, 21);
  std::string Path = testing::TempDir() + "mutk_matrix_io_test.txt";
  ASSERT_TRUE(writeMatrixFile(Path, M));
  auto Back = readMatrixFile(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(M.approxEquals(*Back, 1e-9));
}

// Property sweep: generators stay metric across sizes and seeds.
class GeneratorProperty : public testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, AllGeneratorsProduceMetrics) {
  int N = GetParam();
  for (std::uint64_t Seed = 0; Seed < 3; ++Seed) {
    EXPECT_TRUE(isMetric(uniformRandomMetric(N, Seed)));
    EXPECT_TRUE(isUltrametric(randomUltrametricMatrix(N, Seed)));
    EXPECT_TRUE(isMetric(plantedClusterMetric(N, Seed)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorProperty,
                         testing::Values(2, 3, 5, 8, 13, 21, 34));
