//===- tests/alignment_test.cpp - Needleman-Wunsch alignment ----*- C++ -*-===//

#include "seq/Alignment.h"
#include "seq/EditDistance.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace mutk;

namespace {

std::string stripGaps(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C != '-')
      Out.push_back(C);
  return Out;
}

std::string randomDna(Rng &Rand, int Len) {
  static const char Bases[] = "ACGT";
  std::string S(static_cast<std::size_t>(Len), 'A');
  for (char &C : S)
    C = Bases[Rand.nextBelow(4)];
  return S;
}

} // namespace

TEST(Alignment, IdenticalSequences) {
  Alignment A = alignGlobal("ACGT", "ACGT");
  EXPECT_EQ(A.AlignedA, "ACGT");
  EXPECT_EQ(A.AlignedB, "ACGT");
  EXPECT_EQ(A.Matches, 4);
  EXPECT_EQ(A.Mismatches, 0);
  EXPECT_EQ(A.Gaps, 0);
  EXPECT_DOUBLE_EQ(A.identity(), 1.0);
  EXPECT_DOUBLE_EQ(A.Score, 4.0);
}

TEST(Alignment, EmptyInputs) {
  Alignment Both = alignGlobal("", "");
  EXPECT_EQ(Both.length(), 0);
  EXPECT_DOUBLE_EQ(Both.identity(), 0.0);

  Alignment OneEmpty = alignGlobal("ACG", "");
  EXPECT_EQ(OneEmpty.AlignedA, "ACG");
  EXPECT_EQ(OneEmpty.AlignedB, "---");
  EXPECT_EQ(OneEmpty.Gaps, 3);
}

TEST(Alignment, SingleSubstitution) {
  Alignment A = alignGlobal("ACGT", "AGGT");
  EXPECT_EQ(A.Mismatches, 1);
  EXPECT_EQ(A.Gaps, 0);
  EXPECT_EQ(A.editOperations(), 1);
}

TEST(Alignment, InsertionCreatesGap) {
  Alignment A = alignGlobal("ACGT", "ACGGT");
  EXPECT_EQ(A.Gaps, 1);
  EXPECT_EQ(A.Mismatches, 0);
  EXPECT_EQ(stripGaps(A.AlignedA), "ACGT");
  EXPECT_EQ(stripGaps(A.AlignedB), "ACGGT");
}

TEST(Alignment, ColumnsAlwaysConsistent) {
  Rng Rand(5);
  for (int Trial = 0; Trial < 25; ++Trial) {
    std::string A = randomDna(Rand, Rand.nextInt(0, 30));
    std::string B = randomDna(Rand, Rand.nextInt(0, 30));
    Alignment Al = alignGlobal(A, B);
    ASSERT_EQ(Al.AlignedA.size(), Al.AlignedB.size());
    EXPECT_EQ(stripGaps(Al.AlignedA), A);
    EXPECT_EQ(stripGaps(Al.AlignedB), B);
    EXPECT_EQ(Al.Matches + Al.Mismatches + Al.Gaps, Al.length());
    // No column may pair two gaps.
    for (int I = 0; I < Al.length(); ++I)
      EXPECT_FALSE(Al.AlignedA[static_cast<std::size_t>(I)] == '-' &&
                   Al.AlignedB[static_cast<std::size_t>(I)] == '-');
  }
}

TEST(Alignment, UnitCostSchemeRealizesEditDistance) {
  Rng Rand(6);
  for (int Trial = 0; Trial < 30; ++Trial) {
    std::string A = randomDna(Rand, Rand.nextInt(0, 35));
    std::string B = randomDna(Rand, Rand.nextInt(0, 35));
    Alignment Al = alignGlobal(A, B, editDistanceScoring());
    EXPECT_EQ(Al.editOperations(), editDistance(A, B))
        << "A=" << A << " B=" << B;
    EXPECT_DOUBLE_EQ(Al.Score, -editDistance(A, B));
  }
}

TEST(Alignment, ScoringPreferencesChangeAlignment) {
  // With a harsh gap penalty, prefer mismatches; with a cheap one,
  // prefer gaps.
  AlignmentScoring HarshGaps{1.0, -1.0, -10.0};
  Alignment A = alignGlobal("ACCT", "AGGT", HarshGaps);
  EXPECT_EQ(A.Gaps, 0);

  AlignmentScoring CheapGaps{1.0, -10.0, -0.1};
  Alignment B = alignGlobal("ACCT", "AGGT", CheapGaps);
  EXPECT_EQ(B.Mismatches, 0);
}

TEST(Alignment, FormatProducesTripleLines) {
  Alignment A = alignGlobal("ACGT", "AGGT");
  std::string Text = formatAlignment(A);
  // Three lines: sequence, markers, sequence.
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 3);
  EXPECT_NE(Text.find('|'), std::string::npos); // matches marked
  EXPECT_NE(Text.find('.'), std::string::npos); // mismatch marked
}

TEST(Alignment, FormatWrapsAtWidth) {
  std::string Long(100, 'A');
  Alignment A = alignGlobal(Long, Long);
  std::string Text = formatAlignment(A, 40);
  // 3 chunks of 3 lines plus 2 blank separators = 11 newlines.
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 11);
}

TEST(Alignment, SymmetricScore) {
  Rng Rand(9);
  for (int Trial = 0; Trial < 15; ++Trial) {
    std::string A = randomDna(Rand, 20);
    std::string B = randomDna(Rand, 24);
    EXPECT_DOUBLE_EQ(alignGlobal(A, B).Score, alignGlobal(B, A).Score);
  }
}
