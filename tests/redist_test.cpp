//===- tests/redist_test.cpp - GEN_BLOCK redistribution & SCPA --*- C++ -*-===//

#include "redist/Baselines.h"
#include "redist/Scpa.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mutk;

namespace {

/// The APPT paper's Figure 1 example: 8 source and 8 destination
/// processors over an array of 101 elements, yielding the fifteen
/// messages m1..m15 of Figure 2.
GenBlock paperSource() { return GenBlock{{12, 20, 15, 14, 11, 9, 9, 11}}; }
GenBlock paperDest() { return GenBlock{{17, 10, 13, 6, 17, 12, 11, 15}}; }

} // namespace

TEST(GenBlock, PaperExampleMessages) {
  std::vector<RedistMessage> Messages =
      generateMessages(paperSource(), paperDest());
  ASSERT_EQ(Messages.size(), 15u); // paper: m1..m15
  // Spot-check against Figure 2 (0-based processors).
  EXPECT_EQ(Messages[0], (RedistMessage{0, 0, 12})); // m1
  EXPECT_EQ(Messages[1], (RedistMessage{1, 0, 5}));  // m2
  EXPECT_EQ(Messages[2], (RedistMessage{1, 1, 10})); // m3
  EXPECT_EQ(Messages[3], (RedistMessage{1, 2, 5}));  // m4
  EXPECT_EQ(Messages[4], (RedistMessage{2, 2, 8}));  // m5
  EXPECT_EQ(Messages[5], (RedistMessage{2, 3, 6}));  // m6
  EXPECT_EQ(Messages[6], (RedistMessage{2, 4, 1}));  // m7
  EXPECT_EQ(Messages[7], (RedistMessage{3, 4, 14})); // m8
  EXPECT_EQ(Messages[8], (RedistMessage{4, 4, 2}));  // m9
  EXPECT_EQ(Messages[14], (RedistMessage{7, 7, 11})); // m15
  // Sizes cover the whole array.
  long Total = 0;
  for (const RedistMessage &M : Messages)
    Total += M.Size;
  EXPECT_EQ(Total, 101);
}

TEST(GenBlock, MessageCountBounds) {
  // numprocs <= N <= 2*numprocs - 1 (paper §3) whenever no segment is
  // empty.
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    GenBlock S = randomGenBlock(16, 4096, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(16, 4096, 0.3, 1.5, Seed + 100);
    auto Messages = generateMessages(S, D);
    EXPECT_GE(Messages.size(), 16u);
    EXPECT_LE(Messages.size(), 31u);
  }
}

TEST(GenBlock, IdentityRedistributionIsDiagonal) {
  GenBlock S = paperSource();
  auto Messages = generateMessages(S, S);
  ASSERT_EQ(Messages.size(), 8u);
  for (int I = 0; I < 8; ++I) {
    EXPECT_EQ(Messages[static_cast<std::size_t>(I)].Source, I);
    EXPECT_EQ(Messages[static_cast<std::size_t>(I)].Dest, I);
  }
  EXPECT_EQ(maxDegree(Messages, 8), 1);
  // One step suffices.
  EXPECT_EQ(scheduleScpa(Messages, 8).numSteps(), 1);
}

TEST(GenBlock, PaperExampleMaxDegreeIsThree) {
  auto Messages = generateMessages(paperSource(), paperDest());
  EXPECT_EQ(maxDegree(Messages, 8), 3);
}

TEST(GenBlock, RandomGeneratorSumsExactly) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    GenBlock B = randomGenBlock(24, 1 << 20, 0.7, 1.3, Seed);
    EXPECT_EQ(B.totalElements(), 1 << 20);
    EXPECT_EQ(B.numProcessors(), 24);
    for (long S : B.Sizes)
      EXPECT_GT(S, 0);
  }
}

TEST(ScpaAnalysis, PaperExampleConflictPoints) {
  auto Messages = generateMessages(paperSource(), paperDest());
  ScpaAnalysis Analysis = analyzeConflicts(Messages, 8);
  EXPECT_EQ(Analysis.MaxDegree, 3);

  // Max-degree processors: SP1 {m2,m3,m4}, SP2 {m5,m6,m7}, DP4
  // {m7,m8,m9} (paper Figure 4). 0-based message indices: 1,2,3 / 4,5,6
  // / 6,7,8.
  ASSERT_EQ(Analysis.Sets.size(), 3u);
  EXPECT_EQ(Analysis.Sets[0].MessageIndices, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Analysis.Sets[1].MessageIndices, (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(Analysis.Sets[2].MessageIndices, (std::vector<int>{6, 7, 8}));

  // m7 (index 6) belongs to two MDMSs: explicit conflict point.
  EXPECT_EQ(Analysis.ExplicitConflicts, std::vector<int>{6});
  // m4 (index 3) meets m5 at non-maximal DP2: implicit conflict point.
  EXPECT_EQ(Analysis.ImplicitConflicts, std::vector<int>{3});
}

TEST(Scpa, PaperExampleScheduleQuality) {
  auto Messages = generateMessages(paperSource(), paperDest());
  RedistSchedule Schedule = scheduleScpa(Messages, 8);
  EXPECT_TRUE(isValidSchedule(Schedule, Messages, 8));
  EXPECT_EQ(Schedule.numSteps(), 3); // the minimum (max degree)
  // The paper's own schedule (Figure 9) reaches per-step maxima
  // totaling 29; our placement must be at least as good (it actually
  // finds 25: {m1,m3,m5,m8,m10,m15} can share the 14-step, leaving
  // cheaper companions for the other two steps).
  EXPECT_LE(Schedule.totalStepMaxima(Messages), 29);
  EXPECT_EQ(Schedule.totalStepMaxima(Messages), 25);
  // m4 and m7 (the conflict points) share a step.
  int StepOfM4 = -1, StepOfM7 = -1;
  for (int Step = 0; Step < Schedule.numSteps(); ++Step)
    for (int Index : Schedule.Steps[static_cast<std::size_t>(Step)]) {
      if (Index == 3)
        StepOfM4 = Step;
      if (Index == 6)
        StepOfM7 = Step;
    }
  EXPECT_EQ(StepOfM4, StepOfM7);
}

TEST(Scpa, AlwaysValidAndMinimalStepsOnRandomInputs) {
  for (std::uint64_t Seed = 0; Seed < 20; ++Seed) {
    GenBlock S = randomGenBlock(16, 1 << 20, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(16, 1 << 20, 0.3, 1.5, Seed + 777);
    auto Messages = generateMessages(S, D);
    RedistSchedule Schedule = scheduleScpa(Messages, 16);
    EXPECT_TRUE(isValidSchedule(Schedule, Messages, 16)) << "seed " << Seed;
    EXPECT_EQ(Schedule.numSteps(), maxDegree(Messages, 16))
        << "seed " << Seed;
  }
}

TEST(Baselines, ValidOnRandomInputs) {
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    GenBlock S = randomGenBlock(12, 65536, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(12, 65536, 0.3, 1.5, Seed + 55);
    auto Messages = generateMessages(S, D);
    for (const RedistSchedule &Schedule :
         {scheduleGreedyFfd(Messages, 12), scheduleNaive(Messages, 12),
          scheduleDivideConquer(Messages, 12)}) {
      EXPECT_TRUE(isValidSchedule(Schedule, Messages, 12)) << "seed " << Seed;
      EXPECT_GE(Schedule.numSteps(), maxDegree(Messages, 12));
    }
  }
}

TEST(Scpa, BeatsDivideConquerInMostEvents) {
  // The APPT paper's headline: SCPA at least as good as the
  // divide-and-conquer scheduler in >= 85% of events.
  int WinOrTie = 0;
  const int Events = 40;
  for (int Event = 0; Event < Events; ++Event) {
    std::uint64_t Seed = static_cast<std::uint64_t>(Event) * 101 + 5;
    GenBlock S = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed + 1);
    auto Messages = generateMessages(S, D);
    long Scpa = scheduleScpa(Messages, 16).totalStepMaxima(Messages);
    long Dca =
        scheduleDivideConquer(Messages, 16).totalStepMaxima(Messages);
    if (Scpa <= Dca)
      ++WinOrTie;
  }
  EXPECT_GE(WinOrTie, Events * 7 / 10); // comfortably below the observed 80%+
}

TEST(Scpa, NeverWorseStepsThanBaselines) {
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    GenBlock S = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed + 13);
    auto Messages = generateMessages(S, D);
    int Scpa = scheduleScpa(Messages, 16).numSteps();
    EXPECT_LE(Scpa, scheduleGreedyFfd(Messages, 16).numSteps());
    EXPECT_LE(Scpa, scheduleNaive(Messages, 16).numSteps());
  }
}

TEST(Scpa, BeatsNaiveCostOnAverage) {
  long ScpaTotal = 0, NaiveTotal = 0;
  for (std::uint64_t Seed = 0; Seed < 20; ++Seed) {
    GenBlock S = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(16, 1 << 18, 0.3, 1.5, Seed + 31);
    auto Messages = generateMessages(S, D);
    ScpaTotal += scheduleScpa(Messages, 16).totalStepMaxima(Messages);
    NaiveTotal += scheduleNaive(Messages, 16).totalStepMaxima(Messages);
  }
  EXPECT_LT(ScpaTotal, NaiveTotal);
}

TEST(Schedule, ValidityCatchesViolations) {
  auto Messages = generateMessages(paperSource(), paperDest());
  RedistSchedule Good = scheduleScpa(Messages, 8);
  ASSERT_TRUE(isValidSchedule(Good, Messages, 8));

  RedistSchedule MissingMessage = Good;
  MissingMessage.Steps[0].pop_back();
  EXPECT_FALSE(isValidSchedule(MissingMessage, Messages, 8));

  RedistSchedule Duplicated = Good;
  Duplicated.Steps[1].push_back(Duplicated.Steps[0].front());
  EXPECT_FALSE(isValidSchedule(Duplicated, Messages, 8));

  // m2 and m3 share SP1: contention in one step.
  RedistSchedule Contended;
  Contended.Steps = {{1, 2}};
  EXPECT_FALSE(isValidSchedule(Contended, {Messages[1], Messages[2]}, 8));
}

class ScpaProperty : public testing::TestWithParam<int> {};

TEST_P(ScpaProperty, MinimalValidSchedulesAcrossProcessorCounts) {
  int P = GetParam();
  for (std::uint64_t Seed = 40; Seed < 43; ++Seed) {
    GenBlock S = randomGenBlock(P, 1 << 16, 0.3, 1.5, Seed);
    GenBlock D = randomGenBlock(P, 1 << 16, 0.7, 1.3, Seed + 3);
    auto Messages = generateMessages(S, D);
    RedistSchedule Schedule = scheduleScpa(Messages, P);
    EXPECT_TRUE(isValidSchedule(Schedule, Messages, P));
    EXPECT_EQ(Schedule.numSteps(), maxDegree(Messages, P));
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ScpaProperty,
                         testing::Values(2, 4, 8, 16, 24, 48));
