//===- tests/mp_test.cpp - Message passing & distributed B&B ----*- C++ -*-===//

#include "matrix/Generators.h"
#include "mp/Communicator.h"
#include "mp/MpBnb.h"
#include "mp/Serialize.h"
#include "seq/EvolutionSim.h"

#include <gtest/gtest.h>

#include <thread>

using namespace mutk;

TEST(Communicator, SendAndReceive) {
  Communicator World(2);
  auto A = World.endpoint(0);
  auto B = World.endpoint(1);
  A.send(1, 7, {1, 2, 3});
  Message Msg = B.recv();
  EXPECT_EQ(Msg.Source, 0);
  EXPECT_EQ(Msg.Tag, 7);
  EXPECT_EQ(Msg.Payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Communicator, FifoPerChannel) {
  Communicator World(2);
  auto A = World.endpoint(0);
  auto B = World.endpoint(1);
  for (std::uint8_t I = 0; I < 10; ++I)
    A.send(1, I, {I});
  for (std::uint8_t I = 0; I < 10; ++I) {
    Message Msg = B.recv();
    EXPECT_EQ(Msg.Tag, I);
  }
}

TEST(Communicator, TryRecvNonBlocking) {
  Communicator World(1);
  auto A = World.endpoint(0);
  EXPECT_FALSE(A.tryRecv().has_value());
  A.send(0, 1); // self-send
  EXPECT_TRUE(A.tryRecv().has_value());
  EXPECT_FALSE(A.tryRecv().has_value());
}

TEST(Communicator, BroadcastSkipsSelf) {
  Communicator World(4);
  auto A = World.endpoint(0);
  A.broadcast(9, {42});
  EXPECT_FALSE(A.tryRecv().has_value());
  for (int R = 1; R < 4; ++R) {
    auto Msg = World.endpoint(R).tryRecv();
    ASSERT_TRUE(Msg.has_value());
    EXPECT_EQ(Msg->Tag, 9);
  }
  EXPECT_EQ(World.messagesSent(), 3u);
  EXPECT_EQ(World.bytesSent(), 3u);
}

TEST(Communicator, BlockingRecvAcrossThreads) {
  Communicator World(2);
  int Received = -1;
  std::thread Consumer([&] {
    Message Msg = World.endpoint(1).recv();
    Received = Msg.Tag;
  });
  World.endpoint(0).send(1, 123);
  Consumer.join();
  EXPECT_EQ(Received, 123);
}

TEST(Communicator, PingPong) {
  Communicator World(2);
  std::thread Echo([&] {
    auto B = World.endpoint(1);
    for (int I = 0; I < 50; ++I) {
      Message Msg = B.recv();
      B.send(0, Msg.Tag + 1, std::move(Msg.Payload));
    }
  });
  auto A = World.endpoint(0);
  for (int I = 0; I < 50; ++I) {
    A.send(1, 2 * I, {static_cast<std::uint8_t>(I)});
    Message Back = A.recv();
    EXPECT_EQ(Back.Tag, 2 * I + 1);
  }
  Echo.join();
}

TEST(Serialize, ScalarRoundTrips) {
  ByteWriter Writer;
  Writer.writeU8(200);
  Writer.writeU32(0xDEADBEEF);
  Writer.writeI32(-12345);
  Writer.writeU64(0x0123456789ABCDEFULL);
  Writer.writeF64(-3.14159);
  Writer.writeString("hello world");
  std::vector<std::uint8_t> Bytes = Writer.take();

  ByteReader Reader(Bytes);
  std::uint8_t U8;
  std::uint32_t U32;
  std::int32_t I32;
  std::uint64_t U64;
  double F64;
  std::string Text;
  ASSERT_TRUE(Reader.readU8(U8));
  ASSERT_TRUE(Reader.readU32(U32));
  ASSERT_TRUE(Reader.readI32(I32));
  ASSERT_TRUE(Reader.readU64(U64));
  ASSERT_TRUE(Reader.readF64(F64));
  ASSERT_TRUE(Reader.readString(Text));
  EXPECT_TRUE(Reader.atEnd());
  EXPECT_EQ(U8, 200);
  EXPECT_EQ(U32, 0xDEADBEEFu);
  EXPECT_EQ(I32, -12345);
  EXPECT_EQ(U64, 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(F64, -3.14159);
  EXPECT_EQ(Text, "hello world");
}

TEST(Serialize, ReaderRejectsTruncation) {
  ByteWriter Writer;
  Writer.writeU64(7);
  std::vector<std::uint8_t> Bytes = Writer.take();
  Bytes.pop_back();
  ByteReader Reader(Bytes);
  std::uint64_t Value;
  EXPECT_FALSE(Reader.readU64(Value));
}

TEST(Serialize, TopologyRoundTrip) {
  DistanceMatrix M = uniformRandomMetric(9, 3);
  Topology T = Topology::initialPair(M);
  while (T.numPlaced() < 7)
    T = T.withNextSpeciesAt(T.numNodes() / 2, M);

  auto Back = decodeTopology(encodeTopology(T));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->numPlaced(), T.numPlaced());
  EXPECT_EQ(Back->numNodes(), T.numNodes());
  EXPECT_DOUBLE_EQ(Back->cost(), T.cost());
  for (int I = 0; I < T.numNodes(); ++I) {
    EXPECT_EQ(Back->node(I).Mask, T.node(I).Mask);
    EXPECT_DOUBLE_EQ(Back->node(I).Height, T.node(I).Height);
  }
}

TEST(Serialize, TopologyRejectsCorruption) {
  DistanceMatrix M = uniformRandomMetric(5, 1);
  Topology T = Topology::initialPair(M);
  T = T.withNextSpeciesAt(0, M);
  std::vector<std::uint8_t> Bytes = encodeTopology(T);
  // Flip a mask byte: the cross-validation in fromNodes must reject it.
  Bytes[Bytes.size() - 3] ^= 0xFF;
  EXPECT_FALSE(decodeTopology(Bytes).has_value());
  // Truncation must also be rejected.
  Bytes.resize(Bytes.size() / 2);
  EXPECT_FALSE(decodeTopology(Bytes).has_value());
}

TEST(Serialize, MatrixRoundTrip) {
  DistanceMatrix M = hmdnaLikeMatrix(8, 5);
  auto Back = decodeMatrix(encodeMatrix(M));
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(M.approxEquals(*Back, 0.0));
  EXPECT_EQ(Back->name(0), "dna0");
}

TEST(MpBnb, TrivialSizes) {
  DistanceMatrix M1(1);
  EXPECT_EQ(solveMutMessagePassing(M1, 3).Tree.numLeaves(), 1);
  DistanceMatrix M2(2);
  M2.set(0, 1, 8);
  EXPECT_DOUBLE_EQ(solveMutMessagePassing(M2, 3).Cost, 8.0);
}

TEST(MpBnb, MatchesSequentialCost) {
  for (std::uint64_t Seed = 0; Seed < 4; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(10, Seed);
    double Sequential = solveMutSequential(M).Cost;
    for (int Workers : {1, 2, 5}) {
      MpMutResult R = solveMutMessagePassing(M, Workers);
      EXPECT_NEAR(R.Cost, Sequential, 1e-9)
          << "seed " << Seed << " workers " << Workers;
      EXPECT_TRUE(R.Tree.dominatesMatrix(M));
      EXPECT_GT(R.MessagesSent, 0u);
    }
  }
}

TEST(MpBnb, MatchesSequentialOnDnaData) {
  DistanceMatrix M = hmdnaLikeMatrix(12, 6);
  EXPECT_NEAR(solveMutMessagePassing(M, 4).Cost, solveMutSequential(M).Cost,
              1e-9);
}

TEST(MpBnb, ThreeThreeSupported) {
  DistanceMatrix M = plantedClusterMetric(10, 3, 0.05);
  BnbOptions Options;
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  MpMutResult R = solveMutMessagePassing(M, 3, Options);
  EXPECT_NEAR(R.Cost, solveMutSequential(M).Cost, 1e-9);
}

TEST(MpBnb, TrafficAccounting) {
  DistanceMatrix M = uniformRandomMetric(11, 2);
  MpMutResult R = solveMutMessagePassing(M, 4);
  EXPECT_GT(R.BytesSent, 0u);
  ASSERT_EQ(R.Workers.size(), 4u);
  std::uint64_t WorkerBranched = 0;
  for (const WorkerStats &W : R.Workers)
    WorkerBranched += W.Branched;
  EXPECT_LE(WorkerBranched, R.Stats.Branched);
}

TEST(MpBnb, NoPrematureTerminationWithSingleWorker) {
  // Regression: a worker could send its WorkRequest before the master's
  // dealt Work arrived; the master then saw "all workers idle" and
  // terminated the search early (observed on this exact instance). The
  // credit counters in WorkRequest must prevent that.
  DistanceMatrix M = uniformRandomMetric(18, 1, 1.0, 100.0);
  double Sequential = solveMutSequential(M).Cost;
  for (int Run = 0; Run < 3; ++Run) {
    MpMutResult R = solveMutMessagePassing(M, 1);
    EXPECT_NEAR(R.Cost, Sequential, 1e-9) << "run " << Run;
    // The single worker must actually perform the search, not just
    // absorb the master's seeding.
    EXPECT_GT(R.Stats.Branched, 100u);
  }
}

TEST(MpBnb, WorkStealingMatchesSequential) {
  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  for (std::uint64_t Seed = 0; Seed < 3; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, 30 + Seed);
    double Sequential = solveMutSequential(M).Cost;
    for (int Workers : {1, 2, 4}) {
      MpMutResult R = solveMutMessagePassing(M, Workers, {}, Proto);
      EXPECT_NEAR(R.Cost, Sequential, 1e-9)
          << "seed " << Seed << " workers " << Workers;
    }
  }
}

TEST(MpBnb, StealingMovesWorkBetweenPeers) {
  // On a hard instance with several workers, at least one steal must
  // land (each dry worker tries a peer before falling back to the
  // master) — this is the per-peer work-stealing extension actually
  // exercising, not just matching costs by idling.
  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  DistanceMatrix M = uniformRandomMetric(13, 4, 1.0, 100.0);
  MpMutResult R = solveMutMessagePassing(M, 4, {}, Proto);
  std::uint64_t Stolen = 0, Donated = 0;
  for (const WorkerStats &W : R.Workers) {
    Stolen += W.StolenFromPeers;
    Donated += W.DonatedToPeers;
  }
  EXPECT_EQ(Stolen, Donated) << "every grant has exactly one receiver";
  EXPECT_GT(Stolen, 0u);
  EXPECT_NEAR(R.Cost, solveMutSequential(M).Cost, 1e-9);
}

TEST(MpBnb, DepthBoundedStealingStaysOptimal) {
  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  Proto.StealDepthBound = 6;
  DistanceMatrix M = uniformRandomMetric(11, 12);
  EXPECT_NEAR(solveMutMessagePassing(M, 3, {}, Proto).Cost,
              solveMutSequential(M).Cost, 1e-9);
}

TEST(MpBnb, PeerUbBroadcastMatchesSequential) {
  MpProtocolOptions Proto;
  Proto.PeerUbBroadcast = true;
  for (std::uint64_t Seed = 0; Seed < 3; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, 60 + Seed);
    double Sequential = solveMutSequential(M).Cost;
    MpMutResult R = solveMutMessagePassing(M, 4, {}, Proto);
    EXPECT_NEAR(R.Cost, Sequential, 1e-9) << "seed " << Seed;
  }
}

TEST(MpBnb, StealingAndBroadcastTogetherMatchSequential) {
  MpProtocolOptions Proto;
  Proto.WorkStealing = true;
  Proto.PeerUbBroadcast = true;
  DistanceMatrix M = hmdnaLikeMatrix(12, 9);
  EXPECT_NEAR(solveMutMessagePassing(M, 5, {}, Proto).Cost,
              solveMutSequential(M).Cost, 1e-9);
}

// Over a socket transport the master's reader threads relay
// worker-to-worker frames concurrently with the main thread's Init
// writes, so a slave's first message can legally be a peer's
// StealRequest or UbUpdate rather than Init. The slave must refuse the
// steal (the thief blocks on the reply) and keep running the protocol.
TEST(MpBnb, SlaveToleratesRelayedFramesBeforeInit) {
  Communicator World(3);
  Communicator::Endpoint Slave = World.endpoint(2);
  std::thread SlaveThread([&] { runMpSlave(Slave); });

  // A peer's steal lands first; then a relayed incumbent broadcast.
  World.endpoint(1).send(2, MpTagStealRequest, {});
  ByteWriter Ub;
  Ub.writeF64(123.0);
  World.endpoint(1).send(2, MpTagUbUpdate, Ub.take());

  // The thief must get an explicit refusal or it deadlocks in its
  // blocking steal-wait.
  Message Reply = World.endpoint(1).recv();
  EXPECT_EQ(Reply.Tag, MpTagStealReply);
  EXPECT_EQ(Reply.Source, 2);
  ASSERT_EQ(Reply.Payload.size(), 1u);
  EXPECT_EQ(Reply.Payload[0], 0);

  // Terminate-before-Init still ends the session cleanly afterwards.
  World.endpoint(0).send(2, MpTagTerminate, {});
  Message Stats = World.endpoint(0).recv();
  EXPECT_EQ(Stats.Tag, MpTagStats);
  SlaveThread.join();
}

class MpProperty : public testing::TestWithParam<int> {};

TEST_P(MpProperty, OptimalAcrossWorkerCounts) {
  DistanceMatrix M = uniformRandomMetric(11, 9);
  double Sequential = solveMutSequential(M).Cost;
  EXPECT_NEAR(solveMutMessagePassing(M, GetParam()).Cost, Sequential, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MpProperty,
                         testing::Values(1, 2, 3, 4, 8));
