//===- tests/bestfirst_test.cpp - Best-first search variant -----*- C++ -*-===//

#include "bnb/BestFirstBnb.h"
#include "matrix/Generators.h"
#include "seq/EvolutionSim.h"

#include <gtest/gtest.h>

using namespace mutk;

TEST(BestFirst, TrivialSizes) {
  DistanceMatrix M1(1);
  EXPECT_EQ(solveMutBestFirst(M1).Tree.numLeaves(), 1);
  DistanceMatrix M2(2);
  M2.set(0, 1, 3);
  EXPECT_DOUBLE_EQ(solveMutBestFirst(M2).Cost, 3.0);
}

TEST(BestFirst, MatchesDfsOptimum) {
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(11, Seed);
    MutResult Dfs = solveMutSequential(M);
    BestFirstResult Bf = solveMutBestFirst(M);
    EXPECT_NEAR(Bf.Cost, Dfs.Cost, 1e-9) << "seed " << Seed;
    EXPECT_TRUE(Bf.Stats.Complete);
    EXPECT_TRUE(Bf.Tree.dominatesMatrix(M));
  }
}

TEST(BestFirst, BranchesNoMoreThanDfsOnTieFreeData) {
  // Both solvers must expand every node with LB < optimum; the extras
  // depend on how fast the upper bound drops. On tie-free uniform data
  // best-first wins; on plateau-heavy data (many equal lower bounds,
  // e.g. near-ultrametric matrices) DFS can reach a complete tree — and
  // thus the pruning bound — much earlier, so the inequality is asserted
  // only for the tie-free workload.
  for (std::uint64_t Seed = 0; Seed < 6; ++Seed) {
    DistanceMatrix M = uniformRandomMetric(12, Seed);
    MutResult Dfs = solveMutSequential(M);
    BestFirstResult Bf = solveMutBestFirst(M);
    EXPECT_LE(Bf.Stats.Branched, Dfs.Stats.Branched) << "seed " << Seed;
  }
}

TEST(BestFirst, TracksPeakFrontier) {
  DistanceMatrix M = uniformRandomMetric(12, 4);
  BestFirstResult Bf = solveMutBestFirst(M);
  if (Bf.Stats.Branched > 0)
    EXPECT_GT(Bf.PeakFrontier, 0u);
}

TEST(BestFirst, CollectAllMatchesDfs) {
  DistanceMatrix M(4);
  for (int I = 0; I < 4; ++I)
    for (int J = I + 1; J < 4; ++J)
      M.set(I, J, 2.0);
  BnbOptions Options;
  Options.CollectAllOptimal = true;
  BestFirstResult Bf = solveMutBestFirst(M, Options);
  EXPECT_EQ(Bf.AllOptimal.size(), 15u); // all (2n-3)!! topologies tie
}

TEST(BestFirst, NodeLimitTerminates) {
  DistanceMatrix M = uniformRandomMetric(16, 1);
  BnbOptions Options;
  Options.MaxBranchedNodes = 20;
  BestFirstResult Bf = solveMutBestFirst(M, Options);
  EXPECT_FALSE(Bf.Stats.Complete);
  EXPECT_TRUE(Bf.Tree.dominatesMatrix(M));
}

TEST(BestFirst, WorksWithThreeThree) {
  DistanceMatrix M = hmdnaLikeMatrix(10, 2);
  BnbOptions Options;
  Options.ThreeThree = ThreeThreeMode::ThirdSpecies;
  BestFirstResult Bf = solveMutBestFirst(M, Options);
  EXPECT_NEAR(Bf.Cost, solveMutSequential(M).Cost, 1e-9);
}

class BestFirstProperty : public testing::TestWithParam<int> {};

TEST_P(BestFirstProperty, OptimumAcrossSizes) {
  int N = GetParam();
  for (std::uint64_t Seed = 70; Seed < 72; ++Seed) {
    DistanceMatrix M = plantedClusterMetric(N, Seed, 0.3);
    EXPECT_NEAR(solveMutBestFirst(M).Cost, solveMutSequential(M).Cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BestFirstProperty,
                         testing::Values(2, 4, 6, 9, 12));
