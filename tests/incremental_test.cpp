//===- tests/incremental_test.cpp - Block cache + incremental re-solve ----===//
//
// Covers the cross-request block cache tier and incremental re-solve
// mode end to end: the name-keyed matrix diff, the solved-base index,
// block reuse between different whole-matrix requests (byte-identical
// trees warm vs cold), perturbation requests re-solving exactly the
// dirty blocks, and restart recovery of block-namespace entries through
// the durable cache store.
//
// The workloads are "module compositions": small matrices placed
// block-diagonally at a cross distance far above any module's diameter,
// so every module is a compact set whose condensed matrix — and
// therefore its relabel-invariant fingerprint — depends only on the
// module, not on the composition it appears in (docs/caching.md).
//
//===----------------------------------------------------------------------===//

#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "matrix/MatrixDiff.h"
#include "service/IncrementalIndex.h"
#include "service/Service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace mutk;

namespace {

constexpr double ModuleDiameter = 20.0;
constexpr double ModuleSeparation = 80.0;

/// A module with no internal compact sets: near-equidistant distances in
/// [0.9, 1.0] * ModuleDiameter, so condensation cannot split it and the
/// whole module condenses to a single block.
DistanceMatrix hardModule(int Size, std::uint64_t Seed) {
  return scaledToMax(
      uniformRandomMetric(Size, Seed, 0.9 * ModuleDiameter, ModuleDiameter),
      ModuleDiameter);
}

/// Block-diagonal composition of (Size, Seed) hard modules at cross
/// distance ModuleSeparation; each module is a compact set of the
/// result.
DistanceMatrix compose(const std::vector<std::pair<int, std::uint64_t>> &Specs) {
  int Total = 0;
  for (const auto &Spec : Specs)
    Total += Spec.first;
  DistanceMatrix Out(Total);
  for (int I = 0; I < Total; ++I)
    for (int J = I + 1; J < Total; ++J)
      Out.set(I, J, ModuleSeparation);
  int Offset = 0;
  for (const auto &Spec : Specs) {
    DistanceMatrix Module = hardModule(Spec.first, Spec.second);
    for (int I = 0; I < Module.size(); ++I)
      for (int J = I + 1; J < Module.size(); ++J)
        Out.set(Offset + I, Offset + J, Module.at(I, J));
    Offset += Spec.first;
  }
  return Out;
}

BuildResponse solveOn(TreeService &Service, const DistanceMatrix &M,
                      bool Incremental = false) {
  BuildRequest Request;
  Request.Matrix = M;
  Request.Incremental = Incremental;
  BuildResponse Resp = Service.submit(std::move(Request));
  EXPECT_TRUE(Resp.ok()) << Resp.Message;
  return Resp;
}

/// A fresh, empty scratch directory per call, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Tag) {
    static int Counter = 0;
    Path = testing::TempDir() + "mutk_incr_" + Tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(Counter++);
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

//===----------------------------------------------------------------------===//
// MatrixDiff: the detection half of incremental mode
//===----------------------------------------------------------------------===//

TEST(MatrixDiff, IdenticalMatricesHaveZeroDelta) {
  DistanceMatrix M = uniformRandomMetric(8, 7);
  MatrixDelta Delta = diffMatrices(M, M);
  EXPECT_TRUE(Delta.Comparable);
  EXPECT_EQ(Delta.CommonTaxa, 8);
  EXPECT_EQ(Delta.TaxaAdded, 0);
  EXPECT_EQ(Delta.TaxaRemoved, 0);
  EXPECT_EQ(Delta.EntriesChanged, 0);
  EXPECT_TRUE(Delta.DirtySpecies.empty());
}

TEST(MatrixDiff, ChangedEntryDirtiesBothEndpoints) {
  DistanceMatrix Base = uniformRandomMetric(8, 7);
  DistanceMatrix M = Base;
  M.set(2, 5, Base.at(2, 5) * 1.1);
  MatrixDelta Delta = diffMatrices(Base, M);
  EXPECT_TRUE(Delta.Comparable);
  EXPECT_EQ(Delta.EntriesChanged, 1);
  EXPECT_EQ(Delta.DirtySpecies, (std::vector<int>{2, 5}));
}

TEST(MatrixDiff, AddedTaxonIsDirtyRemovedIsCounted) {
  DistanceMatrix Base = uniformRandomMetric(6, 3);
  // Drop s0, append a fresh taxon at the end.
  DistanceMatrix M(6);
  for (int I = 0; I < 5; ++I)
    M.setName(I, Base.name(I + 1));
  M.setName(5, "fresh");
  for (int I = 0; I < 5; ++I)
    for (int J = I + 1; J < 5; ++J)
      M.set(I, J, Base.at(I + 1, J + 1));
  for (int I = 0; I < 5; ++I)
    M.set(I, 5, 42.0);
  MatrixDelta Delta = diffMatrices(Base, M);
  EXPECT_TRUE(Delta.Comparable);
  EXPECT_EQ(Delta.CommonTaxa, 5);
  EXPECT_EQ(Delta.TaxaAdded, 1);
  EXPECT_EQ(Delta.TaxaRemoved, 1);
  EXPECT_EQ(Delta.EntriesChanged, 0);
  EXPECT_EQ(Delta.DirtySpecies, (std::vector<int>{5}));
}

TEST(MatrixDiff, DisjointNamesAreNotComparable) {
  DistanceMatrix A = uniformRandomMetric(4, 1);
  DistanceMatrix B = uniformRandomMetric(4, 2);
  for (int I = 0; I < 4; ++I)
    B.setName(I, "other" + std::to_string(I));
  EXPECT_FALSE(diffMatrices(A, B).Comparable);
}

TEST(MatrixDiff, ToleranceAbsorbsSmallNoise) {
  DistanceMatrix Base = uniformRandomMetric(6, 9);
  DistanceMatrix M = Base;
  M.set(1, 3, Base.at(1, 3) + 1e-9);
  EXPECT_EQ(diffMatrices(Base, M).EntriesChanged, 1);
  EXPECT_EQ(diffMatrices(Base, M, 1e-6).EntriesChanged, 0);
}

//===----------------------------------------------------------------------===//
// IncrementalIndex: the remembered-base LRU
//===----------------------------------------------------------------------===//

TEST(IncrementalIndex, RemembersAndMatchesSmallestDelta) {
  IncrementalIndex Index(4);
  DistanceMatrix Near = uniformRandomMetric(8, 1);
  DistanceMatrix Far = uniformRandomMetric(8, 2);
  Index.remember(Far, canonicalForm(Far).Key);
  Index.remember(Near, canonicalForm(Near).Key);
  EXPECT_EQ(Index.size(), 2u);

  DistanceMatrix M = Near;
  M.set(0, 1, Near.at(0, 1) * 1.1);
  auto Match = Index.bestBase(M, 2, 8);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->Delta.EntriesChanged, 1);
  EXPECT_EQ(Match->Delta.DirtySpecies, (std::vector<int>{0, 1}));
}

TEST(IncrementalIndex, DedupesByFingerprintAndEvictsLru) {
  IncrementalIndex Index(2);
  DistanceMatrix A = uniformRandomMetric(6, 1);
  DistanceMatrix B = uniformRandomMetric(6, 2);
  DistanceMatrix C = uniformRandomMetric(6, 3);
  Index.remember(A, canonicalForm(A).Key);
  Index.remember(A, canonicalForm(A).Key);
  EXPECT_EQ(Index.size(), 1u);
  Index.remember(B, canonicalForm(B).Key);
  Index.remember(C, canonicalForm(C).Key); // Evicts A.
  EXPECT_EQ(Index.size(), 2u);
  DistanceMatrix NearA = A;
  NearA.set(0, 1, A.at(0, 1) * 1.1);
  EXPECT_FALSE(Index.bestBase(NearA, 0, 8).has_value());
}

TEST(IncrementalIndex, ThresholdsRejectLargeDeltas) {
  IncrementalIndex Index(2);
  DistanceMatrix A = uniformRandomMetric(8, 5);
  Index.remember(A, canonicalForm(A).Key);
  DistanceMatrix M = A;
  M.set(0, 1, A.at(0, 1) * 1.1);
  M.set(2, 3, A.at(2, 3) * 1.1);
  EXPECT_TRUE(Index.bestBase(M, 2, 2).has_value());
  EXPECT_FALSE(Index.bestBase(M, 2, 1).has_value());
}

//===----------------------------------------------------------------------===//
// Cross-request block reuse
//===----------------------------------------------------------------------===//

TEST(BlockCache, SecondRequestReusesSharedModuleBlocks) {
  // X and Y are different whole matrices (different fingerprints) that
  // share module 1: solving Y after X must hit the block tier.
  DistanceMatrix X = compose({{5, 1}, {5, 2}});
  DistanceMatrix Y = compose({{5, 1}, {5, 3}});

  ServiceOptions Options;
  Options.NumWorkers = 1;
  TreeService Service(Options);
  BuildResponse RespX = solveOn(Service, X);
  EXPECT_TRUE(RespX.Exact);
  EXPECT_EQ(RespX.BlockCacheHits, 0u);

  BuildResponse RespY = solveOn(Service, Y);
  EXPECT_FALSE(RespY.CacheHit);
  EXPECT_GE(RespY.BlockCacheHits, 1u);
  EXPECT_GE(RespY.CleanBlocks, 1u);

  StatsSnapshot S = Service.stats();
  EXPECT_GE(S.BlockHits, 1u);
  EXPECT_GE(S.BlockMisses, 1u);
  Service.stop();

  // Block reuse must not change the answer: a cold service produces a
  // byte-identical tree for Y.
  ServiceOptions ColdOptions;
  ColdOptions.NumWorkers = 1;
  ColdOptions.CacheCapacity = 0;
  TreeService Cold(ColdOptions);
  BuildResponse ColdY = solveOn(Cold, Y);
  EXPECT_EQ(ColdY.Newick, RespY.Newick);
  EXPECT_NEAR(ColdY.Cost, RespY.Cost, 1e-9);
  Cold.stop();
}

TEST(BlockCache, WholeMatrixReplayStaysByteIdentical) {
  DistanceMatrix M = compose({{5, 4}, {5, 5}});
  ServiceOptions Options;
  Options.NumWorkers = 1;
  TreeService Service(Options);
  BuildResponse First = solveOn(Service, M);
  BuildResponse Second = solveOn(Service, M);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.Newick, First.Newick);
  EXPECT_NEAR(Second.Cost, First.Cost, 1e-12);
  Service.stop();
}

//===----------------------------------------------------------------------===//
// Incremental re-solve: only dirty blocks pay
//===----------------------------------------------------------------------===//

TEST(Incremental, PerturbedEntryResolvesOnlyTheDirtyModule) {
  // Four hard modules + the all-80 root block = 5 blocks. Stretching one
  // in-module distance dirties exactly that module's block; the other
  // three modules and the root condense byte-identically and replay.
  DistanceMatrix Base = compose({{5, 1}, {5, 2}, {5, 3}, {5, 4}});
  DistanceMatrix M = Base;
  M.set(0, 1, Base.at(0, 1) * 1.05);

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.Incremental = true;
  TreeService Service(Options);
  // The cold base solve runs every block; its dirty count is the total
  // block count of this decomposition.
  BuildResponse BaseResp = solveOn(Service, Base);
  std::uint32_t TotalBlocks = BaseResp.DirtyBlocks;
  EXPECT_EQ(BaseResp.CleanBlocks, 0u);
  EXPECT_GE(TotalBlocks, 5u);

  BuildResponse Resp = solveOn(Service, M, /*Incremental=*/true);
  EXPECT_FALSE(Resp.CacheHit);
  EXPECT_TRUE(Resp.IncrementalApplied);
  EXPECT_EQ(Resp.EntriesChanged, 1);
  EXPECT_EQ(Resp.TaxaAdded, 0);
  EXPECT_EQ(Resp.TaxaRemoved, 0);
  EXPECT_EQ(Resp.DirtyBlocks, 1u);
  EXPECT_EQ(Resp.CleanBlocks, TotalBlocks - 1);

  StatsSnapshot S = Service.stats();
  EXPECT_EQ(S.IncrementalApplied, 1u);
  EXPECT_EQ(S.IncrementalDirty, 1u);
  EXPECT_EQ(S.IncrementalClean, TotalBlocks - 1);
  Service.stop();

  // The reused blocks must not change the answer.
  ServiceOptions ColdOptions;
  ColdOptions.NumWorkers = 1;
  ColdOptions.CacheCapacity = 0;
  TreeService Cold(ColdOptions);
  BuildResponse ColdResp = solveOn(Cold, M);
  EXPECT_EQ(ColdResp.Newick, Resp.Newick);
  EXPECT_NEAR(ColdResp.Cost, Resp.Cost, 1e-9);
  Cold.stop();
}

TEST(Incremental, OneTaxonPerturbationResolvesOnlyAffectedBlocks) {
  // The acceptance drill: add one taxon next to module 0. Its enlarged
  // block is the only dirty one; modules 1-3 and the root replay.
  DistanceMatrix Base = compose({{5, 1}, {5, 2}, {5, 3}, {5, 4}});
  DistanceMatrix M(Base.size() + 1);
  for (int I = 0; I < Base.size(); ++I) {
    M.setName(I, Base.name(I));
    for (int J = I + 1; J < Base.size(); ++J)
      M.set(I, J, Base.at(I, J));
  }
  for (int I = 0; I < Base.size(); ++I)
    M.set(I, Base.size(), I < 5 ? ModuleDiameter : ModuleSeparation);

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.Incremental = true;
  TreeService Service(Options);
  BuildResponse BaseResp = solveOn(Service, Base);
  std::uint32_t TotalBlocks = BaseResp.DirtyBlocks;

  BuildResponse Resp = solveOn(Service, M, /*Incremental=*/true);
  EXPECT_TRUE(Resp.IncrementalApplied);
  EXPECT_EQ(Resp.TaxaAdded, 1);
  EXPECT_EQ(Resp.TaxaRemoved, 0);
  EXPECT_EQ(Resp.EntriesChanged, 0);
  // Only the block(s) the new taxon lands in re-solve; every module the
  // taxon avoids — and the unchanged merge structure above them —
  // replays from the block cache.
  EXPECT_EQ(Resp.DirtyBlocks, 1u);
  EXPECT_GE(Resp.CleanBlocks, TotalBlocks - 2);
  Service.stop();

  ServiceOptions ColdOptions;
  ColdOptions.NumWorkers = 1;
  ColdOptions.CacheCapacity = 0;
  TreeService Cold(ColdOptions);
  BuildResponse ColdResp = solveOn(Cold, M);
  EXPECT_EQ(ColdResp.Newick, Resp.Newick);
  EXPECT_NEAR(ColdResp.Cost, Resp.Cost, 1e-9);
  Cold.stop();
}

TEST(Incremental, RemovedTaxonResolvesOnlyItsModule) {
  DistanceMatrix Base = compose({{5, 1}, {5, 2}, {5, 3}, {5, 4}});
  std::vector<int> Keep;
  for (int I = 0; I + 1 < Base.size(); ++I)
    Keep.push_back(I);
  DistanceMatrix M = Base.restrictedTo(Keep);

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.Incremental = true;
  TreeService Service(Options);
  BuildResponse BaseResp = solveOn(Service, Base);
  std::uint32_t TotalBlocks = BaseResp.DirtyBlocks;

  BuildResponse Resp = solveOn(Service, M, /*Incremental=*/true);
  EXPECT_TRUE(Resp.IncrementalApplied);
  EXPECT_EQ(Resp.TaxaAdded, 0);
  EXPECT_EQ(Resp.TaxaRemoved, 1);
  // The shrunken module's block plus the merge node above it re-solve;
  // everything untouched by the removal replays.
  EXPECT_LE(Resp.DirtyBlocks, 2u);
  EXPECT_GE(Resp.CleanBlocks, TotalBlocks - 2);
  Service.stop();
}

TEST(Incremental, NoQualifyingBaseFallsBackToFullSolve) {
  DistanceMatrix Base = compose({{5, 1}, {5, 2}});
  DistanceMatrix Unrelated = compose({{5, 8}, {5, 9}});

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.Incremental = true;
  TreeService Service(Options);
  solveOn(Service, Base);

  BuildResponse Resp = solveOn(Service, Unrelated, /*Incremental=*/true);
  EXPECT_TRUE(Resp.ok());
  EXPECT_FALSE(Resp.IncrementalApplied);
  EXPECT_TRUE(Resp.Exact);
  EXPECT_EQ(Service.stats().IncrementalApplied, 0u);
  Service.stop();
}

TEST(Incremental, FlagIsIgnoredWhenServiceIndexIsOff) {
  // `--incremental` is a service-side opt-in; a request flag against a
  // plain service must degrade to a normal solve.
  DistanceMatrix M = compose({{5, 1}, {5, 2}});
  ServiceOptions Options;
  Options.NumWorkers = 1;
  TreeService Service(Options);
  BuildResponse Resp = solveOn(Service, M, /*Incremental=*/true);
  EXPECT_TRUE(Resp.ok());
  EXPECT_FALSE(Resp.IncrementalApplied);
  Service.stop();
}

//===----------------------------------------------------------------------===//
// Durability: block entries survive a restart
//===----------------------------------------------------------------------===//

TEST(Persist, BlockEntriesSurviveServiceRestart) {
  ScratchDir Dir("blockrestart");
  DistanceMatrix X = compose({{5, 1}, {5, 2}});
  DistanceMatrix Y = compose({{5, 1}, {5, 3}});

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.StateDir = Dir.path();
  {
    TreeService Service(Options);
    BuildResponse Resp = solveOn(Service, X);
    EXPECT_TRUE(Resp.Exact);
    Service.stop();
  }

  // The restarted service never solved anything, yet Y's shared module
  // must replay from the recovered block namespace — and X itself from
  // the recovered whole namespace.
  TreeService Restarted(Options);
  BuildResponse RespY = solveOn(Restarted, Y);
  EXPECT_FALSE(RespY.CacheHit);
  EXPECT_GE(RespY.BlockCacheHits, 1u);
  BuildResponse RespX = solveOn(Restarted, X);
  EXPECT_TRUE(RespX.CacheHit);
  Restarted.stop();
}

} // namespace
