//===- tests/persist_test.cpp - Durability subsystem tests ----------------===//
//
// Covers src/persist bottom-up — CRC framing, WAL replay and tail
// repair, the durable cache store, the job journal, file-backed search
// checkpoints — then the integration layers: solver checkpoint/resume
// equality for all three B&B engines, per-block pipeline checkpoints,
// and TreeService restart recovery (durable cache hits and journaled
// job re-enqueue). The kill-and-recover test SIGKILLs a forked writer
// mid-append and proves the survivor loads a clean prefix.
//
//===----------------------------------------------------------------------===//

#include "bnb/BestFirstBnb.h"
#include "bnb/Checkpoint.h"
#include "bnb/SequentialBnb.h"
#include "compact/CompactSetPipeline.h"
#include "matrix/Fingerprint.h"
#include "matrix/Generators.h"
#include "mp/Serialize.h"
#include "obs/Log.h"
#include "parallel/ThreadedBnb.h"
#include "persist/CacheStore.h"
#include "persist/Checkpoint.h"
#include "persist/Crc32.h"
#include "persist/Files.h"
#include "persist/JobJournal.h"
#include "persist/Wal.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fcntl.h>
#include <filesystem>
#include <numeric>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mutk;

namespace {

/// A fresh, empty scratch directory per call, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Tag) {
    static int Counter = 0;
    Path = testing::TempDir() + "mutk_persist_" + Tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(Counter++);
    std::filesystem::remove_all(Path);
    persist::ensureDir(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }

  const std::string &path() const { return Path; }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }

private:
  std::string Path;
};

/// Captures log lines for the duration of a scope.
class LogCapture {
public:
  LogCapture() {
    obs::setLogSink([this](std::string_view Line) {
      Lines.append(Line.data(), Line.size());
    });
  }
  ~LogCapture() { obs::setLogSink(nullptr); }

  bool contains(const std::string &Needle) const {
    return Lines.find(Needle) != std::string::npos;
  }

private:
  std::string Lines;
};

/// In-memory CheckpointSink keeping the most recent capture.
struct MemorySink : CheckpointSink {
  SearchCheckpoint Last;
  std::uint64_t Count = 0;
  void checkpoint(const SearchCheckpoint &State) override {
    Last = State;
    ++Count;
  }
};

/// Flips one byte of a file in place (corruption injection).
void flipByte(const std::string &Path, std::size_t Offset) {
  auto Bytes = persist::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  ASSERT_LT(Offset, Bytes->size());
  (*Bytes)[Offset] ^= 0xff;
  ASSERT_TRUE(persist::writeFileAtomic(Path, *Bytes));
}

/// Drops the last \p N bytes of a file (torn-tail injection).
void truncateTail(const std::string &Path, std::size_t N) {
  auto Bytes = persist::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  ASSERT_GT(Bytes->size(), N);
  Bytes->resize(Bytes->size() - N);
  ASSERT_TRUE(persist::writeFileAtomic(Path, *Bytes));
}

/// A realistic durable record: a solved small matrix in canonical form.
persist::DurableCacheRecord makeRecord(std::uint64_t Seed) {
  DistanceMatrix M = uniformRandomMetric(6, Seed);
  CanonicalForm Form = canonicalForm(M);
  MutResult R = solveMutSequential(M);
  persist::DurableCacheRecord Rec;
  Rec.Key = Form.Key;
  Rec.CanonicalBytes = Form.Bytes;
  Rec.Tree = R.Tree;
  Rec.Cost = R.Cost;
  Rec.Exact = true;
  return Rec;
}

} // namespace

//===----------------------------------------------------------------------===//
// CRC32 and frame scanning
//===----------------------------------------------------------------------===//

TEST(Crc32, KnownVectors) {
  // The standard CRC-32 check value ("123456789" -> 0xCBF43926).
  const std::uint8_t Check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(persist::crc32(Check, sizeof(Check)), 0xCBF43926u);
  EXPECT_EQ(persist::crc32(nullptr, 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> Data(97);
  for (std::size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<std::uint8_t>(I * 31 + 7);
  std::uint32_t Want = persist::crc32(Data);
  for (std::size_t I = 0; I < Data.size(); I += 13) {
    Data[I] ^= 0x10;
    EXPECT_NE(persist::crc32(Data), Want) << "flip at " << I;
    Data[I] ^= 0x10;
  }
  EXPECT_EQ(persist::crc32(Data), Want);
}

TEST(Frames, ScanStopsAtDamage) {
  std::vector<std::uint8_t> Buffer;
  persist::appendFrame(Buffer, {1, 2, 3});
  persist::appendFrame(Buffer, {});
  persist::appendFrame(Buffer, std::vector<std::uint8_t>(64, 0xAB));
  std::size_t IntactBytes = Buffer.size();
  persist::appendFrame(Buffer, {9, 9, 9});
  Buffer.resize(Buffer.size() - 2); // tear the last frame

  persist::FrameScan Scan = persist::scanFrames(Buffer);
  ASSERT_EQ(Scan.Payloads.size(), 3u);
  EXPECT_EQ(Scan.Payloads[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(Scan.Payloads[1].empty());
  EXPECT_EQ(Scan.CleanBytes, IntactBytes);
  EXPECT_TRUE(Scan.Damaged);
}

//===----------------------------------------------------------------------===//
// WAL
//===----------------------------------------------------------------------===//

TEST(Wal, AppendReplayRoundTrip) {
  ScratchDir Dir("wal");
  std::string Path = Dir.file("log.wal");
  {
    persist::Wal W(Path, "MUTKTEST", 1);
    EXPECT_TRUE(W.append({1, 2, 3}, true));
    EXPECT_TRUE(W.append({}, false));
    EXPECT_TRUE(W.append(std::vector<std::uint8_t>(300, 0x5C), true));
  }
  persist::Wal R(Path, "MUTKTEST", 1);
  persist::Wal::ReplayResult Replay = R.replay();
  EXPECT_FALSE(Replay.Missing);
  EXPECT_FALSE(Replay.Incompatible);
  EXPECT_FALSE(Replay.Damaged);
  ASSERT_EQ(Replay.Records.size(), 3u);
  EXPECT_EQ(Replay.Records[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(Replay.Records[2].size(), 300u);
}

TEST(Wal, TornTailDropsOnlyTheTail) {
  ScratchDir Dir("wal_tail");
  std::string Path = Dir.file("log.wal");
  {
    persist::Wal W(Path, "MUTKTEST", 1);
    W.append({10}, false);
    W.append({20}, false);
    W.append({30}, true);
  }
  truncateTail(Path, 3);
  persist::Wal::ReplayResult Replay =
      persist::Wal(Path, "MUTKTEST", 1).replay();
  EXPECT_TRUE(Replay.Damaged);
  ASSERT_EQ(Replay.Records.size(), 2u);
  EXPECT_EQ(Replay.Records[1], (std::vector<std::uint8_t>{20}));
}

TEST(Wal, CorruptPayloadStopsReplayThere) {
  ScratchDir Dir("wal_flip");
  std::string Path = Dir.file("log.wal");
  std::uint64_t FirstFrameEnd;
  {
    persist::Wal W(Path, "MUTKTEST", 1);
    W.append(std::vector<std::uint8_t>(40, 1), false);
    FirstFrameEnd = W.bytes();
    W.append(std::vector<std::uint8_t>(40, 2), false);
    W.append(std::vector<std::uint8_t>(40, 3), true);
  }
  // Flip a payload byte of the middle record: record 1 survives, the
  // rest of the log is unreachable (by design — order is meaningful).
  flipByte(Path, FirstFrameEnd + 8 + 10);
  persist::Wal::ReplayResult Replay =
      persist::Wal(Path, "MUTKTEST", 1).replay();
  EXPECT_TRUE(Replay.Damaged);
  ASSERT_EQ(Replay.Records.size(), 1u);
  EXPECT_EQ(Replay.Records[0][0], 1);
}

TEST(Wal, HeaderGuardsFormatAndFlavor) {
  ScratchDir Dir("wal_hdr");
  std::string Path = Dir.file("log.wal");
  {
    persist::Wal W(Path, "MUTKTEST", 1);
    W.append({1}, true);
  }
  EXPECT_TRUE(persist::Wal(Path, "MUTKTEST", 2).replay().Incompatible);
  EXPECT_TRUE(persist::Wal(Path, "MUTKOTHR", 1).replay().Incompatible);
  EXPECT_TRUE(persist::Wal(Dir.file("absent.wal"), "MUTKTEST", 1)
                  .replay()
                  .Missing);
}

TEST(Wal, RewriteReplacesContents) {
  ScratchDir Dir("wal_rw");
  persist::Wal W(Dir.file("log.wal"), "MUTKTEST", 1);
  W.append({1}, false);
  W.append({2}, true);
  ASSERT_TRUE(W.rewrite({{7, 7}}));
  persist::Wal::ReplayResult Replay = W.replay();
  EXPECT_FALSE(Replay.Damaged);
  ASSERT_EQ(Replay.Records.size(), 1u);
  EXPECT_EQ(Replay.Records[0], (std::vector<std::uint8_t>{7, 7}));
  // Appends after a rewrite must land in the *new* file, not the old
  // inode the O_APPEND descriptor pointed at.
  EXPECT_TRUE(W.append({8}, true));
  EXPECT_EQ(W.replay().Records.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Cache store
//===----------------------------------------------------------------------===//

TEST(CacheStore, RecordCodecRoundTrip) {
  persist::DurableCacheRecord Rec = makeRecord(5);
  auto Decoded = persist::decodeCacheRecord(persist::encodeCacheRecord(Rec));
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->Key, Rec.Key);
  EXPECT_EQ(Decoded->CanonicalBytes, Rec.CanonicalBytes);
  EXPECT_EQ(Decoded->Cost, Rec.Cost);
  EXPECT_EQ(Decoded->Exact, Rec.Exact);
  EXPECT_EQ(toNewick(Decoded->Tree), toNewick(Rec.Tree));
}

TEST(CacheStore, AppendLoadCompactCycle) {
  ScratchDir Dir("store");
  std::vector<persist::DurableCacheRecord> Recs = {makeRecord(1),
                                                   makeRecord(2),
                                                   makeRecord(3)};
  {
    persist::CacheStore Store(Dir.path());
    for (const auto &Rec : Recs)
      ASSERT_TRUE(Store.append(Rec));
  }
  {
    persist::CacheStore Store(Dir.path());
    persist::CacheStore::LoadResult Load = Store.load();
    EXPECT_FALSE(Load.ColdStart);
    EXPECT_FALSE(Load.WalDamaged);
    EXPECT_EQ(Load.WalRecords, 3u);
    EXPECT_EQ(Load.SnapshotRecords, 0u);
    ASSERT_EQ(Load.Records.size(), 3u);
    EXPECT_EQ(Load.Records[1].Key, Recs[1].Key);
    // Compaction folds the WAL into the snapshot.
    ASSERT_TRUE(Store.compact(Load.Records));
  }
  {
    persist::CacheStore Store(Dir.path());
    persist::CacheStore::LoadResult Load = Store.load();
    EXPECT_EQ(Load.SnapshotRecords, 3u);
    EXPECT_EQ(Load.WalRecords, 0u);
    ASSERT_TRUE(Store.append(makeRecord(4)));
    EXPECT_EQ(Store.load().Records.size(), 4u);
  }
}

TEST(CacheStore, DamagedWalTailIsSkippedLoggedAndRepaired) {
  ScratchDir Dir("store_tail");
  {
    persist::CacheStore Store(Dir.path());
    Store.append(makeRecord(1));
    Store.append(makeRecord(2));
  }
  truncateTail(Dir.file("cache.wal"), 5);
  {
    LogCapture Capture;
    persist::CacheStore Store(Dir.path());
    persist::CacheStore::LoadResult Load = Store.load();
    EXPECT_TRUE(Load.WalDamaged);
    EXPECT_EQ(Load.Records.size(), 1u);
    EXPECT_EQ(Load.DroppedRecords, 0u);
    EXPECT_TRUE(Capture.contains("damaged tail"));
  }
  // The damaged tail was truncated away during load: a fresh load sees
  // a clean log, and new appends extend the intact prefix.
  persist::CacheStore Store(Dir.path());
  persist::CacheStore::LoadResult Load = Store.load();
  EXPECT_FALSE(Load.WalDamaged);
  EXPECT_EQ(Load.Records.size(), 1u);
  ASSERT_TRUE(Store.append(makeRecord(3)));
  EXPECT_EQ(Store.load().Records.size(), 2u);
}

TEST(CacheStore, IncompatibleStateStartsCold) {
  ScratchDir Dir("store_cold");
  // A WAL written by a future format version must not be interpreted.
  {
    persist::Wal Future(Dir.file("cache.wal"), "MUTKCWAL", 999);
    Future.append(persist::encodeCacheRecord(makeRecord(1)), true);
  }
  LogCapture Capture;
  persist::CacheStore Store(Dir.path());
  persist::CacheStore::LoadResult Load = Store.load();
  EXPECT_TRUE(Load.ColdStart);
  EXPECT_TRUE(Load.Records.empty());
  EXPECT_TRUE(Capture.contains("starting cold"));
  // The store is usable immediately after the reset.
  ASSERT_TRUE(Store.append(makeRecord(2)));
  EXPECT_EQ(Store.load().Records.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Job journal
//===----------------------------------------------------------------------===//

TEST(JobJournal, PendingJobsSurviveCompletedOnesDoNot) {
  ScratchDir Dir("jobs");
  BuildRequest Build;
  Build.Matrix = uniformRandomMetric(5, 3);
  std::vector<std::uint8_t> Encoded = encodeRequest(makeBuildRequest(Build));
  {
    persist::JobJournal J(Dir.path());
    ASSERT_TRUE(J.submitted(1, Encoded));
    ASSERT_TRUE(J.submitted(2, Encoded));
    ASSERT_TRUE(J.submitted(3, Encoded));
    ASSERT_TRUE(J.completed(2));
    ASSERT_TRUE(J.completed(1));
  }
  std::vector<persist::PendingJob> Pending;
  {
    persist::JobJournal J(Dir.path());
    Pending = J.load();
  }
  ASSERT_EQ(Pending.size(), 1u);
  EXPECT_EQ(Pending[0].Id, 3u);
  std::optional<Request> Decoded = decodeRequest(Pending[0].EncodedRequest);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->V, Verb::Build);
  EXPECT_EQ(Decoded->Build.Matrix.size(), 5);
  // load() compacted the journal down to the survivors.
  persist::JobJournal Again(Dir.path());
  std::vector<persist::PendingJob> Reloaded = Again.load();
  ASSERT_EQ(Reloaded.size(), 1u);
  EXPECT_EQ(Reloaded[0].Id, 3u);
}

TEST(JobJournal, DamagedTailTruncated) {
  ScratchDir Dir("jobs_tail");
  BuildRequest Build;
  Build.Matrix = uniformRandomMetric(4, 1);
  std::vector<std::uint8_t> Encoded = encodeRequest(makeBuildRequest(Build));
  {
    persist::JobJournal J(Dir.path());
    J.submitted(1, Encoded);
    J.submitted(2, Encoded);
  }
  truncateTail(Dir.file("jobs.wal"), 4);
  LogCapture Capture;
  persist::JobJournal J(Dir.path());
  std::vector<persist::PendingJob> Pending = J.load();
  ASSERT_EQ(Pending.size(), 1u);
  EXPECT_EQ(Pending[0].Id, 1u);
  EXPECT_TRUE(Capture.contains("damaged tail"));
}

//===----------------------------------------------------------------------===//
// Solver checkpoint/resume
//===----------------------------------------------------------------------===//

TEST(Resume, SequentialResumesToIdenticalCost) {
  DistanceMatrix M = uniformRandomMetric(10, 42);
  MutResult Ref = solveMutSequential(M);
  ASSERT_TRUE(Ref.Stats.Complete);
  ASSERT_GT(Ref.Stats.Branched, 8u);

  MemorySink Sink;
  BnbOptions Interrupted;
  Interrupted.Checkpoint = &Sink;
  Interrupted.CheckpointEveryNodes = 1;
  Interrupted.MaxBranchedNodes = Ref.Stats.Branched / 2;
  MutResult Partial = solveMutSequential(M, Interrupted);
  ASSERT_FALSE(Partial.Stats.Complete);
  ASSERT_GT(Sink.Count, 0u);
  EXPECT_EQ(Sink.Last.MatrixKey, fingerprint(M));

  BnbOptions Resume;
  Resume.ResumeFrom = &Sink.Last;
  MutResult Done = solveMutSequential(M, Resume);
  EXPECT_TRUE(Done.Stats.Complete);
  EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);
  // Counters continue across the interruption instead of restarting.
  EXPECT_GE(Done.Stats.Branched, Sink.Last.Stats.Branched);
}

TEST(Resume, BestFirstResumesToIdenticalCost) {
  DistanceMatrix M = uniformRandomMetric(10, 7);
  BestFirstResult Ref = solveMutBestFirst(M);
  ASSERT_TRUE(Ref.Stats.Complete);
  ASSERT_GT(Ref.Stats.Branched, 8u);

  MemorySink Sink;
  BnbOptions Interrupted;
  Interrupted.Checkpoint = &Sink;
  Interrupted.CheckpointEveryNodes = 1;
  Interrupted.MaxBranchedNodes = Ref.Stats.Branched / 2;
  BestFirstResult Partial = solveMutBestFirst(M, Interrupted);
  ASSERT_FALSE(Partial.Stats.Complete);
  ASSERT_GT(Sink.Count, 0u);

  BnbOptions Resume;
  Resume.ResumeFrom = &Sink.Last;
  BestFirstResult Done = solveMutBestFirst(M, Resume);
  EXPECT_TRUE(Done.Stats.Complete);
  EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);
}

TEST(Resume, ThreadedResumesSequentialCheckpoint) {
  // Cross-engine resume: the checkpoint format is solver-independent
  // (same maxmin label space), so a search interrupted under the DFS
  // solver can be finished by the threaded one.
  DistanceMatrix M = uniformRandomMetric(10, 19);
  MutResult Ref = solveMutSequential(M);
  ASSERT_TRUE(Ref.Stats.Complete);

  MemorySink Sink;
  BnbOptions Interrupted;
  Interrupted.Checkpoint = &Sink;
  Interrupted.CheckpointEveryNodes = 1;
  Interrupted.MaxBranchedNodes = std::max<std::uint64_t>(
      1, Ref.Stats.Branched / 2);
  solveMutSequential(M, Interrupted);
  ASSERT_GT(Sink.Count, 0u);

  BnbOptions Resume;
  Resume.ResumeFrom = &Sink.Last;
  ParallelMutResult Done = solveMutThreaded(M, 4, Resume);
  EXPECT_TRUE(Done.Stats.Complete);
  EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);
}

TEST(Resume, ThreadedCheckpointsWhileSolving) {
  DistanceMatrix M = uniformRandomMetric(11, 23);
  MutResult Ref = solveMutSequential(M);

  MemorySink Sink;
  BnbOptions Options;
  Options.Checkpoint = &Sink;
  Options.CheckpointEveryNodes = 1;
  Options.CheckpointEverySeconds = 0.001;
  ParallelMutResult R = solveMutThreaded(M, 3, Options);
  EXPECT_TRUE(R.Stats.Complete);
  EXPECT_NEAR(R.Cost, Ref.Cost, 1e-9);
  // Whether a checkpoint fired depends on timing; when one did, it must
  // be resumable to the same optimum.
  if (Sink.Count > 0) {
    BnbOptions Resume;
    Resume.ResumeFrom = &Sink.Last;
    ParallelMutResult Done = solveMutThreaded(M, 3, Resume);
    EXPECT_TRUE(Done.Stats.Complete);
    EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);
  }
}

TEST(Resume, MismatchedMatrixStartsFresh) {
  DistanceMatrix A = uniformRandomMetric(9, 1);
  DistanceMatrix B = uniformRandomMetric(9, 2);
  ASSERT_NE(fingerprint(A), fingerprint(B));

  MemorySink Sink;
  BnbOptions Interrupted;
  Interrupted.Checkpoint = &Sink;
  Interrupted.CheckpointEveryNodes = 1;
  Interrupted.MaxBranchedNodes = 4;
  solveMutSequential(A, Interrupted);
  ASSERT_GT(Sink.Count, 0u);

  // Resuming a checkpoint of A against B is refused (fingerprint
  // mismatch) — B still solves to its own optimum from scratch.
  BnbOptions Resume;
  Resume.ResumeFrom = &Sink.Last;
  MutResult RB = solveMutSequential(B, Resume);
  MutResult RefB = solveMutSequential(B);
  EXPECT_TRUE(RB.Stats.Complete);
  EXPECT_NEAR(RB.Cost, RefB.Cost, 1e-9);
}

TEST(Resume, CheckpointCodecRoundTrip) {
  DistanceMatrix M = uniformRandomMetric(9, 13);
  MemorySink Sink;
  BnbOptions Options;
  Options.Checkpoint = &Sink;
  Options.CheckpointEveryNodes = 1;
  Options.MaxBranchedNodes = 10;
  solveMutSequential(M, Options);
  ASSERT_GT(Sink.Count, 0u);

  std::optional<SearchCheckpoint> Decoded =
      decodeSearchCheckpoint(encodeSearchCheckpoint(Sink.Last));
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->Frontier.size(), Sink.Last.Frontier.size());
  EXPECT_EQ(Decoded->UpperBound, Sink.Last.UpperBound);
  EXPECT_EQ(Decoded->MatrixKey, Sink.Last.MatrixKey);
  EXPECT_EQ(Decoded->Stats.Branched, Sink.Last.Stats.Branched);
  EXPECT_EQ(toNewick(Decoded->Incumbent), toNewick(Sink.Last.Incumbent));

  BnbOptions Resume;
  Resume.ResumeFrom = &*Decoded;
  MutResult Done = solveMutSequential(M, Resume);
  MutResult Ref = solveMutSequential(M);
  EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);
}

//===----------------------------------------------------------------------===//
// File-backed checkpoints
//===----------------------------------------------------------------------===//

TEST(FileCheckpoint, WriteLoadResumeRemove) {
  ScratchDir Dir("ckpt");
  std::string Path = Dir.file("search.ckpt");
  DistanceMatrix M = uniformRandomMetric(10, 31);
  MutResult Ref = solveMutSequential(M);

  persist::FileCheckpointSink Sink(Path);
  BnbOptions Interrupted;
  Interrupted.Checkpoint = &Sink;
  Interrupted.CheckpointEveryNodes = 1;
  Interrupted.MaxBranchedNodes = std::max<std::uint64_t>(
      1, Ref.Stats.Branched / 2);
  MutResult Partial = solveMutSequential(M, Interrupted);
  ASSERT_FALSE(Partial.Stats.Complete);
  ASSERT_GT(Sink.writes(), 0u);

  std::optional<SearchCheckpoint> Loaded = persist::loadCheckpoint(Path);
  ASSERT_TRUE(Loaded.has_value());
  BnbOptions Resume;
  Resume.ResumeFrom = &*Loaded;
  MutResult Done = solveMutSequential(M, Resume);
  EXPECT_TRUE(Done.Stats.Complete);
  EXPECT_NEAR(Done.Cost, Ref.Cost, 1e-9);

  EXPECT_TRUE(persist::removeCheckpoint(Path));
  EXPECT_FALSE(persist::loadCheckpoint(Path).has_value());
}

TEST(FileCheckpoint, CorruptFileIsRejectedNotTrusted) {
  ScratchDir Dir("ckpt_bad");
  std::string Path = Dir.file("search.ckpt");
  DistanceMatrix M = uniformRandomMetric(9, 3);
  persist::FileCheckpointSink Sink(Path);
  BnbOptions Options;
  Options.Checkpoint = &Sink;
  Options.CheckpointEveryNodes = 1;
  Options.MaxBranchedNodes = 8;
  solveMutSequential(M, Options);
  ASSERT_GT(Sink.writes(), 0u);

  std::uint64_t Size = persist::fileSize(Path);
  ASSERT_GT(Size, 16u);
  flipByte(Path, static_cast<std::size_t>(Size) - 4);
  LogCapture Capture;
  EXPECT_FALSE(persist::loadCheckpoint(Path).has_value());
  EXPECT_TRUE(Capture.contains("checkpoint ignored"));
}

//===----------------------------------------------------------------------===//
// Pipeline per-block checkpoints
//===----------------------------------------------------------------------===//

TEST(PipelineCheckpoint, HooksProduceSameTreeAndCleanUp) {
  ScratchDir Dir("blocks");
  DistanceMatrix M = plantedClusterMetric(18, 77);
  PipelineOptions Plain;
  PipelineResult Ref = buildCompactSetTree(M, Plain);

  auto PathFor = [&](std::uint64_t Key) {
    return Dir.file(std::to_string(Key) + ".ckpt");
  };
  BlockCheckpointHooks Hooks;
  Hooks.SinkFor = [&](std::uint64_t Key) {
    return std::make_unique<persist::FileCheckpointSink>(PathFor(Key));
  };
  Hooks.Load = [&](std::uint64_t Key) {
    return persist::loadCheckpoint(PathFor(Key));
  };
  Hooks.Done = [&](std::uint64_t Key) { persist::removeCheckpoint(PathFor(Key)); };

  PipelineOptions WithHooks;
  WithHooks.BlockCheckpoint = &Hooks;
  WithHooks.Bnb.CheckpointEveryNodes = 1;
  PipelineResult R = buildCompactSetTree(M, WithHooks);
  EXPECT_NEAR(R.Cost, Ref.Cost, 1e-9);
  EXPECT_EQ(toNewick(R.Tree), toNewick(Ref.Tree));
  // Every exactly-solved block finished, so Done() removed every file.
  EXPECT_TRUE(std::filesystem::is_empty(Dir.path()));
}

//===----------------------------------------------------------------------===//
// Service restart recovery
//===----------------------------------------------------------------------===//

TEST(ServiceRecovery, DurableCacheServesHitsAcrossRestart) {
  ScratchDir Dir("svc_cache");
  DistanceMatrix M = uniformRandomMetric(10, 7);
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.StateDir = Dir.path();

  double Cost = 0.0;
  {
    TreeService Service(Options);
    BuildRequest Req;
    Req.Matrix = M;
    BuildResponse Resp = Service.submit(Req);
    ASSERT_TRUE(Resp.ok());
    EXPECT_FALSE(Resp.CacheHit);
    Cost = Resp.Cost;
    Service.stop();
  }
  {
    TreeService Service(Options);
    BuildRequest Req;
    Req.Matrix = M;
    BuildResponse Resp = Service.submit(Req);
    ASSERT_TRUE(Resp.ok());
    EXPECT_TRUE(Resp.CacheHit);
    EXPECT_NEAR(Resp.Cost, Cost, 1e-9);
    EXPECT_GE(Service.stats().WholeHits, 1u);

    // Relabeling-invariance survives the disk round trip too.
    std::vector<int> Perm(10);
    std::iota(Perm.begin(), Perm.end(), 0);
    std::reverse(Perm.begin(), Perm.end());
    BuildRequest Relabeled;
    Relabeled.Matrix = M.permuted(Perm);
    BuildResponse Resp2 = Service.submit(Relabeled);
    ASSERT_TRUE(Resp2.ok());
    EXPECT_TRUE(Resp2.CacheHit);
    EXPECT_NEAR(Resp2.Cost, Cost, 1e-9);

    // The persist instruments flow into the StatsJson surface.
    EXPECT_NE(Service.statsJson().find("mutk_persist_wal_appends_total"),
              std::string::npos);
    Service.stop();
  }
}

TEST(ServiceRecovery, JournaledJobIsReRunAfterCrash) {
  ScratchDir Dir("svc_jobs");
  DistanceMatrix M = uniformRandomMetric(9, 11);
  BuildRequest Req;
  Req.Matrix = M;
  {
    // Simulated crash: the job reached the journal but no worker ever
    // marked it complete (the process "died" before solving).
    persist::JobJournal Journal(Dir.path());
    ASSERT_TRUE(Journal.submitted(7, encodeRequest(makeBuildRequest(Req))));
  }
  ServiceOptions Options;
  Options.NumWorkers = 2;
  Options.StateDir = Dir.path();
  {
    TreeService Service(Options);
    // The recovered job runs in the background; wait for it to finish.
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(60);
    while (Service.stats().Completed < 1 &&
           std::chrono::steady_clock::now() < Deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(Service.stats().Completed, 1u);
    Service.stop();
  }
  {
    // Its solution became durable: a fresh daemon answers from cache.
    TreeService Service(Options);
    BuildResponse Resp = Service.submit(Req);
    ASSERT_TRUE(Resp.ok());
    EXPECT_TRUE(Resp.CacheHit);
    Service.stop();
  }
  // And the journal no longer lists the job as pending.
  persist::JobJournal Journal(Dir.path());
  EXPECT_TRUE(Journal.load().empty());
}

//===----------------------------------------------------------------------===//
// Kill-and-recover
//===----------------------------------------------------------------------===//

// fork() under ThreadSanitizer deadlocks sporadically when the parent
// holds runtime locks; the durability property is already exercised by
// the ASan and Release legs, so skip the hard-kill test there.
#if !defined(__SANITIZE_THREAD__)
TEST(CrashRecovery, SigkilledWriterLeavesLoadablePrefix) {
  ScratchDir Dir("kill");
  // Build the record in the parent: the child only appends bytes.
  persist::DurableCacheRecord Rec = makeRecord(1);

  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: append records as fast as possible until killed.
    persist::CacheStore Store(Dir.path());
    std::uint64_t I = 0;
    for (;;) {
      Rec.Key = ++I;
      Store.append(Rec, /*Sync=*/false);
    }
    _exit(0); // unreachable
  }

  // Parent: wait until the WAL has real volume, then kill mid-write.
  std::string WalPath = Dir.file("cache.wal");
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (persist::fileSize(WalPath) < (64u << 10) &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(persist::fileSize(WalPath), 64u << 10)
      << "writer child made no progress";
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(Status));

  // The survivor sees an intact prefix of the append sequence: possibly
  // a torn final frame (skipped), never a decoded-but-wrong record.
  persist::CacheStore Store(Dir.path());
  persist::CacheStore::LoadResult Load = Store.load();
  EXPECT_FALSE(Load.ColdStart);
  EXPECT_EQ(Load.DroppedRecords, 0u);
  ASSERT_GT(Load.Records.size(), 0u);
  for (std::size_t I = 0; I < Load.Records.size(); ++I)
    EXPECT_EQ(Load.Records[I].Key, I + 1);
  // And the repaired store accepts new work.
  EXPECT_TRUE(Store.append(makeRecord(2)));
}
#endif // !__SANITIZE_THREAD__
