//===- tests/qos_test.cpp - Cost-predictive QoS layer tests ---------------===//
//
// Covers `src/qos` bottom-up — the cost model (monotonicity property,
// memoization, online calibration), admission control (token buckets,
// tier routing), the priority/EDF ready queue (FIFO degradation,
// rank order, tenant fairness, starvation hatch, close/drain) and the
// coalescer — then the QoS-enabled TreeService end to end: exact-tier
// byte-identity with the non-QoS path, heuristic-tier routing, load
// shedding, the overload-vs-shutdown rejection split, and a coalesced
// fan-out storm across a concurrent shutdown (TSan-labeled).
//
//===----------------------------------------------------------------------===//

#include "matrix/Fingerprint.h"
#include "qos/Admission.h"
#include "qos/Coalescer.h"
#include "qos/CostModel.h"
#include "qos/Scheduler.h"
#include "service/Service.h"
#include "service/ServiceStats.h"
#include "tree/Newick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace mutk;
using namespace mutk::qos;

namespace {

/// Deterministic splitmix-style generator (tests must not depend on
/// libstdc++'s distribution implementations).
struct Rng {
  std::uint64_t State;
  explicit Rng(std::uint64_t Seed) : State(Seed) {}
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  std::uint64_t below(std::uint64_t N) { return next() % N; }
  double unit() {
    return static_cast<double>(next() >> 11) /
           static_cast<double>(1ull << 53);
  }
};

/// A valid metric with distances in [Lo, Hi] (triangle inequality holds
/// whenever Hi <= 2 * Lo).
DistanceMatrix bandMatrix(int N, double Lo, double Hi, std::uint64_t Seed) {
  Rng R(Seed);
  DistanceMatrix M(N);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      M.set(I, J, Lo + (Hi - Lo) * R.unit());
  return M;
}

/// Near-equidistant metric: the top condensed block stays large and B&B
/// prunes poorly, so its predicted exact cost is enormous.
DistanceMatrix narrowBandMatrix(int N, std::uint64_t Seed) {
  return bandMatrix(N, 99.0, 100.0, Seed);
}

/// \p M with its species relabeled by a deterministic permutation
/// (reversal) — same canonical fingerprint, different byte layout.
DistanceMatrix relabeled(const DistanceMatrix &M) {
  int N = M.size();
  DistanceMatrix Out(N);
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Out.set(N - 1 - I, N - 1 - J, M.at(I, J));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// CostModel
//===----------------------------------------------------------------------===//

// The admission contract: adding taxa or widening any block never
// lowers the predicted cost, so a shed decision cannot flip to "admit"
// when the input grows. Checked as a randomized property over profiles
// and caps, including the cap-crossing point where an exact block
// switches to the in-pipeline heuristic estimate.
TEST(QosCostModel, PredictionIsMonotoneInSpeciesAndBlockSizes) {
  CostModel Model;
  Rng R(17);
  for (int Trial = 0; Trial < 500; ++Trial) {
    DifficultyProfile P;
    P.Species = 4 + static_cast<int>(R.below(40));
    P.Spread = 1.0 + 9.0 * R.unit();
    int Blocks = 1 + static_cast<int>(R.below(6));
    int Acc = 0;
    for (int B = 0; B < Blocks; ++B) {
      int Size = 2 + static_cast<int>(R.below(18));
      P.BlockSizes.push_back(Size);
      Acc = std::max(Acc, Size);
    }
    P.MaxBlock = Acc;
    int Cap = 1 + static_cast<int>(R.below(24));
    double Base = Model.predictNodes(P, Cap);

    // More taxa, same decomposition.
    DifficultyProfile MoreTaxa = P;
    MoreTaxa.Species += 1 + static_cast<int>(R.below(8));
    EXPECT_GE(Model.predictNodes(MoreTaxa, Cap), Base)
        << "species " << P.Species << " -> " << MoreTaxa.Species;

    // Widen one block (and the species count it implies). Every block
    // is exercised over the trials, including the one crossing `Cap`.
    DifficultyProfile Wider = P;
    std::size_t Which = R.below(Wider.BlockSizes.size());
    Wider.BlockSizes[Which] += 1;
    Wider.Species += 1;
    Wider.MaxBlock = std::max(Wider.MaxBlock, Wider.BlockSizes[Which]);
    EXPECT_GE(Model.predictNodes(Wider, Cap), Base)
        << "block " << P.BlockSizes[Which] << " -> "
        << Wider.BlockSizes[Which] << " under cap " << Cap;
  }
}

TEST(QosCostModel, ProfileComputesDecompositionFeatures) {
  // Two tight clusters far apart: compact sets exist, so the largest
  // condensed block is strictly smaller than the species count.
  DistanceMatrix M(8);
  for (int I = 0; I < 8; ++I)
    for (int J = I + 1; J < 8; ++J) {
      bool Same = (I < 4) == (J < 4);
      M.set(I, J, Same ? 1.0 + 0.01 * (I + J) : 10.0);
    }
  DifficultyProfile P = CostModel::computeProfile(M);
  EXPECT_EQ(P.Species, 8);
  EXPECT_GT(P.MaxBlock, 0);
  EXPECT_LT(P.MaxBlock, 8);
  EXPECT_GT(P.Spread, 5.0);
  EXPECT_FALSE(P.BlockSizes.empty());

  // Near-equidistant: only forced minimum pairs condense, so the top
  // block stays close to the full species count and the spread is ~1.
  DifficultyProfile Flat =
      CostModel::computeProfile(narrowBandMatrix(10, 3));
  EXPECT_GE(Flat.MaxBlock, 7);
  EXPECT_LT(Flat.Spread, 1.1);
}

// Satellite: the dry-run decomposition is memoized by the
// relabeling-invariant fingerprint — resubmissions and relabelings of
// one matrix pay for exactly one decomposition.
TEST(QosCostModel, DryRunProfileIsMemoizedAcrossRelabelings) {
  CostModel Model;
  DistanceMatrix M = bandMatrix(12, 5.0, 9.0, 21);
  DifficultyProfile First = Model.profileFor(M);
  EXPECT_EQ(Model.dryRuns(), 1u);
  EXPECT_EQ(Model.memoHits(), 0u);

  for (int I = 0; I < 3; ++I)
    (void)Model.profileFor(M);
  DifficultyProfile Renamed = Model.profileFor(relabeled(M));
  EXPECT_EQ(Model.dryRuns(), 1u) << "memoized matrix was re-decomposed";
  EXPECT_EQ(Model.memoHits(), 4u);
  EXPECT_EQ(Renamed.Species, First.Species);
  EXPECT_EQ(Renamed.MaxBlock, First.MaxBlock);

  // A genuinely different matrix still pays its own dry run.
  (void)Model.profileFor(bandMatrix(12, 5.0, 9.0, 22));
  EXPECT_EQ(Model.dryRuns(), 2u);
}

TEST(QosCostModel, MemoEvictsLeastRecentlyUsed) {
  CostModelOptions Options;
  Options.MemoCapacity = 2;
  CostModel Model(Options);
  DistanceMatrix A = bandMatrix(8, 5.0, 9.0, 1);
  DistanceMatrix B = bandMatrix(8, 5.0, 9.0, 2);
  DistanceMatrix C = bandMatrix(8, 5.0, 9.0, 3);
  (void)Model.profileFor(A);
  (void)Model.profileFor(B);
  (void)Model.profileFor(C); // evicts A
  EXPECT_EQ(Model.dryRuns(), 3u);
  (void)Model.profileFor(A); // must re-decompose
  EXPECT_EQ(Model.dryRuns(), 4u);
}

TEST(QosCostModel, CalibrationConvergesTowardObservedCost) {
  CostModel Model;
  double Initial = Model.millisPerNode();
  // 1000 nodes in 100 ms = 0.1 ms/node, far above the initial guess.
  for (int I = 0; I < 50; ++I)
    Model.observe(1000, 100.0);
  EXPECT_GT(Model.millisPerNode(), Initial);
  EXPECT_NEAR(Model.millisPerNode(), 0.1, 0.01);

  // Nonpositive samples are ignored, not folded in as zeros.
  double Before = Model.millisPerNode();
  Model.observe(0, 100.0);
  Model.observe(1000, 0.0);
  EXPECT_EQ(Model.millisPerNode(), Before);
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

TEST(QosAdmission, RoutesTiersByRemainingDeadline) {
  CostModel Model;
  AdmissionOptions Options;
  Options.Enabled = true;
  Options.DegradedMaxExactBlockSize = 8;
  AdmissionController Admission(Model, Options);

  DifficultyProfile P =
      CostModel::computeProfile(narrowBandMatrix(20, 5));
  BuildRequest Request;
  Request.MaxExactBlockSize = 20;

  double ExactMs = Model.predictMillis(P, 20);
  double DegradedMs = Model.predictMillis(P, 8);
  double HeurMs = Model.heuristicMillis(P.Species);
  ASSERT_GT(ExactMs, DegradedMs);
  ASSERT_GT(DegradedMs, HeurMs);

  // No deadline: full fidelity, whatever the predicted cost.
  Verdict V = Admission.assess(Request, P, -1.0);
  EXPECT_TRUE(V.Admit);
  EXPECT_EQ(V.Tier, QosTier::Exact);
  EXPECT_GT(V.PredictedMillis, 0.0);
  EXPECT_GT(V.PredictedNodes, 0.0);

  // Generous deadline: the exact solve fits.
  V = Admission.assess(Request, P, ExactMs * 2.0);
  EXPECT_TRUE(V.Admit);
  EXPECT_EQ(V.Tier, QosTier::Exact);

  // Between degraded and exact: route to the degraded pipeline.
  V = Admission.assess(Request, P, (DegradedMs + ExactMs) / 2.0);
  EXPECT_TRUE(V.Admit);
  EXPECT_EQ(V.Tier, QosTier::Pipeline);
  EXPECT_LT(V.PredictedMillis, ExactMs);

  // Between heuristic and degraded: a single agglomerative pass.
  V = Admission.assess(Request, P, (HeurMs + DegradedMs) / 2.0);
  EXPECT_TRUE(V.Admit);
  EXPECT_EQ(V.Tier, QosTier::Heuristic);
  EXPECT_EQ(V.PredictedNodes, 0.0) << "heuristic runs must not calibrate";

  // Below even the heuristic: shed with a structured error.
  V = Admission.assess(Request, P, HeurMs / 1e6);
  EXPECT_FALSE(V.Admit);
  EXPECT_EQ(V.Error, ServiceError::Shed);
  EXPECT_FALSE(V.Message.empty());
}

TEST(QosAdmission, TokenBucketsAreIndependentPerTenant) {
  CostModel Model;
  AdmissionOptions Options;
  Options.Enabled = true;
  // Refill is negligible over the test's lifetime: burst is the budget.
  Options.TenantRatePerSec = 1e-6;
  Options.TenantBurst = 3.0;
  AdmissionController Admission(Model, Options);

  DifficultyProfile P = CostModel::generatorProfile(6);
  BuildRequest A;
  A.Tenant = "alice";
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Admission.assess(A, P, -1.0).Admit) << "burst admit " << I;
  Verdict Drained = Admission.assess(A, P, -1.0);
  EXPECT_FALSE(Drained.Admit);
  EXPECT_EQ(Drained.Error, ServiceError::RateLimited);
  EXPECT_NE(Drained.Message.find("alice"), std::string::npos);

  // A different tenant's bucket is untouched.
  BuildRequest B;
  B.Tenant = "bob";
  EXPECT_TRUE(Admission.assess(B, P, -1.0).Admit);
}

//===----------------------------------------------------------------------===//
// ReadyQueue / ReadyPolicy
//===----------------------------------------------------------------------===//

TEST(QosReadyQueue, UniformTicketsDegradeToExactFifo) {
  ReadyQueue<int> Q(64);
  for (int I = 0; I < 16; ++I)
    ASSERT_TRUE(Q.push(int(I)));
  for (int I = 0; I < 16; ++I) {
    std::optional<int> Got = Q.tryPop();
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(*Got, I) << "default tickets must preserve FIFO order";
  }
}

TEST(QosReadyQueue, PicksPriorityThenEarliestDeadline) {
  ReadyQueue<std::string> Q(16);
  auto Now = Ticket::Clock::now();
  auto ticket = [&](std::uint8_t Priority, int DeadlineMs) {
    Ticket Tk;
    Tk.Priority = Priority;
    if (DeadlineMs >= 0) {
      Tk.HasDeadline = true;
      Tk.Deadline = Now + std::chrono::milliseconds(DeadlineMs);
    }
    return Tk;
  };
  ASSERT_TRUE(Q.push("low", ticket(0, -1)));
  ASSERT_TRUE(Q.push("normal-late", ticket(1, 5000)));
  ASSERT_TRUE(Q.push("high-no-deadline", ticket(2, -1)));
  ASSERT_TRUE(Q.push("high-early", ticket(2, 100)));
  ASSERT_TRUE(Q.push("high-late", ticket(2, 3000)));

  std::vector<std::string> Order;
  while (std::optional<std::string> Got = Q.tryPop())
    Order.push_back(*Got);
  std::vector<std::string> Want = {"high-early", "high-late",
                                   "high-no-deadline", "normal-late",
                                   "low"};
  EXPECT_EQ(Order, Want);
}

TEST(QosReadyQueue, SharesFairlyAcrossTenants) {
  ReadyQueue<std::string> Q(16);
  auto ticket = [](const std::string &Tenant) {
    Ticket Tk;
    Tk.Tenant = Tenant;
    return Tk;
  };
  // Tenant "big" floods the queue ahead of "small"'s single entry; fair
  // sharing serves "small" second, not last.
  ASSERT_TRUE(Q.push("big-1", ticket("big")));
  ASSERT_TRUE(Q.push("big-2", ticket("big")));
  ASSERT_TRUE(Q.push("big-3", ticket("big")));
  ASSERT_TRUE(Q.push("small-1", ticket("small")));

  std::vector<std::string> Order;
  while (std::optional<std::string> Got = Q.tryPop())
    Order.push_back(*Got);
  std::vector<std::string> Want = {"big-1", "small-1", "big-2", "big-3"};
  EXPECT_EQ(Order, Want);
}

TEST(QosReadyQueue, StarvationHatchOverridesRankOrder) {
  obs::Counter Promotions;
  SchedulerOptions Options;
  Options.StarvationMillis = 1.0;
  Options.StarvationPromotions = &Promotions;
  ReadyQueue<std::string> Q(16, Options);

  Ticket Low;
  Low.Priority = 0;
  ASSERT_TRUE(Q.push("starving-low", std::move(Low)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Ticket High;
  High.Priority = 2;
  ASSERT_TRUE(Q.push("fresh-high", std::move(High)));

  std::optional<std::string> Got = Q.tryPop();
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "starving-low")
      << "an over-age entry must outrank a fresh high-priority one";
  EXPECT_GE(Promotions.value(), 1u);
}

TEST(QosReadyQueue, MirrorsBoundedQueueCloseAndDrainSemantics) {
  ReadyQueue<int> Q(2);
  ASSERT_TRUE(Q.tryPush(1));
  ASSERT_TRUE(Q.tryPush(2));
  int Spill = 3;
  EXPECT_FALSE(Q.tryPush(std::move(Spill))) << "full queue must refuse";
  EXPECT_EQ(Spill, 3) << "failed push must leave the item untouched";
  EXPECT_EQ(Q.depth(), 2u);

  Q.close();
  EXPECT_TRUE(Q.closed());
  int Late = 4;
  EXPECT_FALSE(Q.push(std::move(Late)));

  // Accepted items drain after close...
  EXPECT_EQ(Q.pop().value_or(-1), 1);
  EXPECT_EQ(Q.pop().value_or(-1), 2);
  // ...then pop reports exhaustion instead of blocking.
  EXPECT_FALSE(Q.pop().has_value());

  ReadyQueue<int> D(4);
  ASSERT_TRUE(D.push(7));
  ASSERT_TRUE(D.push(8));
  std::vector<int> Drained = D.drain();
  EXPECT_EQ(Drained, (std::vector<int>{7, 8}));
  EXPECT_EQ(D.depth(), 0u);
}

//===----------------------------------------------------------------------===//
// Coalescer
//===----------------------------------------------------------------------===//

TEST(QosCoalescer, ParksFollowersAndFansOutOnce) {
  Coalescer C;
  std::vector<std::uint8_t> Identity = {1, 2, 3};
  bool Tracked = false;
  Coalescer::Attach Leader = C.attach(42, Identity, &Tracked);
  EXPECT_TRUE(Leader.Leader);
  EXPECT_TRUE(Tracked);

  Coalescer::Attach F1 = C.attach(42, Identity, &Tracked);
  Coalescer::Attach F2 = C.attach(42, Identity, &Tracked);
  EXPECT_FALSE(F1.Leader);
  EXPECT_FALSE(F2.Leader);
  EXPECT_EQ(C.parkedFollowers(), 2u);

  // A key collision with different identity bytes must not join the
  // flight (and must not be tracked as a new leader either).
  std::vector<std::uint8_t> Other = {9, 9, 9};
  bool CollisionTracked = true;
  Coalescer::Attach Collision = C.attach(42, Other, &CollisionTracked);
  EXPECT_TRUE(Collision.Leader);
  EXPECT_FALSE(CollisionTracked);

  std::vector<std::promise<BuildResponse>> Parked = C.take(42);
  ASSERT_EQ(Parked.size(), 2u);
  BuildResponse Resp;
  Resp.Newick = "(a,b);";
  for (std::promise<BuildResponse> &P : Parked)
    P.set_value(Resp);
  EXPECT_EQ(F1.Follower.get().Newick, "(a,b);");
  EXPECT_EQ(F2.Follower.get().Newick, "(a,b);");
  EXPECT_EQ(C.parkedFollowers(), 0u);
  EXPECT_TRUE(C.take(42).empty()) << "a flight ends exactly once";
}

//===----------------------------------------------------------------------===//
// QoS-enabled TreeService
//===----------------------------------------------------------------------===//

// Acceptance gate: a request routed to the exact tier runs completely
// unmodified, so its answer is byte-identical to the non-QoS service's.
TEST(QosService, ExactTierIsByteIdenticalToNonQosPath) {
  DistanceMatrix M = bandMatrix(14, 50.0, 95.0, 11);

  TreeService Plain;
  BuildRequest R1;
  R1.Matrix = M;
  BuildResponse Baseline = Plain.submit(std::move(R1));
  ASSERT_TRUE(Baseline.ok()) << Baseline.Message;
  EXPECT_EQ(Baseline.Tier, QosTier::Exact);
  EXPECT_EQ(Baseline.PredictedMillis, 0.0);

  ServiceOptions Options;
  Options.Qos.Enabled = true;
  TreeService Qos(Options);
  BuildRequest R2;
  R2.Matrix = M;
  BuildResponse Routed = Qos.submit(std::move(R2));
  ASSERT_TRUE(Routed.ok()) << Routed.Message;
  EXPECT_EQ(Routed.Tier, QosTier::Exact);
  EXPECT_GT(Routed.PredictedMillis, 0.0);

  EXPECT_EQ(Routed.Newick, Baseline.Newick);
  EXPECT_EQ(Routed.Cost, Baseline.Cost);
  EXPECT_EQ(Routed.Exact, Baseline.Exact);
  EXPECT_EQ(Qos.stats().TierExact, 1u);
}

// A deadline the exact solve cannot meet — but one agglomerative pass
// can — routes to the heuristic tier and still yields a feasible tree.
TEST(QosService, HeuristicTierAnswersHopelessExactDeadlines) {
  ServiceOptions Options;
  Options.Qos.Enabled = true;
  // Degraded cap == request cap disables the pipeline middle tier, so
  // the only choice below exact is the heuristic pass.
  Options.Qos.DegradedMaxExactBlockSize = 20;
  TreeService Service(Options);

  DistanceMatrix M = narrowBandMatrix(20, 7);
  // Pick a deadline between the model's two predictions with a wide
  // real-time cushion: a freshly constructed service carries the same
  // default-calibrated model, so the admission decision is
  // deterministic while the heuristic still has milliseconds of slack
  // to actually run.
  CostModel Replica;
  DifficultyProfile P = CostModel::computeProfile(M);
  double ExactMs = Replica.predictMillis(P, 20);
  double HeurMs = Replica.heuristicMillis(P.Species);
  auto Deadline = static_cast<std::uint32_t>(
      std::max(2.0, std::min(ExactMs / 4.0, 50.0)));
  ASSERT_GT(ExactMs, static_cast<double>(Deadline));
  ASSERT_LE(HeurMs, static_cast<double>(Deadline));

  BuildRequest R;
  R.Matrix = M;
  R.MaxExactBlockSize = 20;
  R.DeadlineMillis = Deadline;
  R.UseCache = false;
  BuildResponse Resp = Service.submit(std::move(R));
  ASSERT_TRUE(Resp.ok()) << Resp.Message;
  EXPECT_EQ(Resp.Tier, QosTier::Heuristic);
  EXPECT_FALSE(Resp.Exact);
  EXPECT_GT(Resp.Cost, 0.0);
  std::optional<PhyloTree> Tree = parseNewick(Resp.Newick);
  ASSERT_TRUE(Tree.has_value());
  EXPECT_EQ(Tree->numLeaves(), 20);
  EXPECT_EQ(Service.stats().TierHeuristic, 1u);
}

TEST(QosService, ShedsWhenNotEvenTheHeuristicFits) {
  ServiceOptions Options;
  Options.Qos.Enabled = true;
  // A pessimistic fit margin stands in for a loaded machine: nothing
  // fits a 1 ms deadline.
  Options.Qos.FitMargin = 1e7;
  TreeService Service(Options);

  BuildRequest R;
  R.Matrix = narrowBandMatrix(16, 2);
  R.MaxExactBlockSize = 16;
  R.DeadlineMillis = 1;
  BuildResponse Resp = Service.submit(std::move(R));
  EXPECT_EQ(Resp.Error, ServiceError::Shed);
  EXPECT_FALSE(Resp.Message.empty());
  EXPECT_GT(Resp.PredictedMillis, 0.0);
  EXPECT_EQ(Service.stats().Shed, 1u);
  EXPECT_EQ(Service.stats().Accepted, 0u) << "a shed job was never queued";

  // The same matrix without a deadline still solves fully.
  BuildRequest Retry;
  Retry.Matrix = narrowBandMatrix(16, 2);
  Retry.MaxExactBlockSize = 16;
  EXPECT_TRUE(Service.submit(std::move(Retry)).ok());
}

TEST(QosService, RateLimitedTenantGetsItsOwnErrorCode) {
  ServiceOptions Options;
  Options.Qos.Enabled = true;
  Options.Qos.TenantRatePerSec = 1e-6;
  Options.Qos.TenantBurst = 2.0;
  Options.QosCoalesce = false; // distinct error paths, not fan-out
  TreeService Service(Options);

  for (int I = 0; I < 2; ++I) {
    BuildRequest R;
    R.Matrix = bandMatrix(8, 5.0, 9.0, static_cast<std::uint64_t>(I));
    R.Tenant = "chatty";
    ASSERT_TRUE(Service.submit(std::move(R)).ok());
  }
  BuildRequest Over;
  Over.Matrix = bandMatrix(8, 5.0, 9.0, 99);
  Over.Tenant = "chatty";
  BuildResponse Resp = Service.submit(std::move(Over));
  EXPECT_EQ(Resp.Error, ServiceError::RateLimited);
  EXPECT_GE(Service.stats().RateLimited, 1u);
}

// Regression (overload vs shutdown): the two rejection reasons carry
// distinct status codes and distinct client-facing advice — an
// overloaded server must not masquerade as one that is going away.
TEST(QosService, OverloadAndShutdownRejectionsAreDistinct) {
  ASSERT_STRNE(serviceErrorAdvice(ServiceError::QueueFull),
               serviceErrorAdvice(ServiceError::ShuttingDown));
  ASSERT_GT(std::strlen(serviceErrorAdvice(ServiceError::QueueFull)), 0u);
  ASSERT_GT(std::strlen(serviceErrorAdvice(ServiceError::ShuttingDown)), 0u);
  ASSERT_STRNE(serviceErrorAdvice(ServiceError::Shed),
               serviceErrorAdvice(ServiceError::RateLimited));

  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.QueueCapacity = 1;
  Options.BlockOnFullQueue = false;
  TreeService Service(Options);

  // Pin the worker on a bounded-but-slow solve, fill the single queue
  // slot, then overflow it.
  BuildRequest Blocker;
  Blocker.Matrix = narrowBandMatrix(18, 3);
  Blocker.MaxExactBlockSize = 18;
  Blocker.NodeBudget = 400'000;
  Blocker.UseCache = false;
  std::future<BuildResponse> BlockerDone =
      Service.submitAsync(std::move(Blocker));

  // Async submissions so the queue slot stays occupied while we keep
  // pushing: a rejected submission resolves its future immediately,
  // an accepted one parks behind the pinned worker.
  std::vector<std::future<BuildResponse>> Accepted;
  bool SawQueueFull = false;
  for (int I = 0; I < 64 && !SawQueueFull; ++I) {
    BuildRequest R;
    R.Matrix = bandMatrix(10, 5.0, 9.0, static_cast<std::uint64_t>(I));
    R.UseCache = false;
    std::future<BuildResponse> F = Service.submitAsync(std::move(R));
    if (F.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      BuildResponse Resp = F.get();
      if (!Resp.ok()) {
        SawQueueFull = true;
        EXPECT_EQ(Resp.Error, ServiceError::QueueFull)
            << "overload must report QueueFull, got: " << Resp.Message;
      }
      continue;
    }
    Accepted.push_back(std::move(F));
  }
  EXPECT_TRUE(SawQueueFull) << "never filled a capacity-1 queue";
  EXPECT_TRUE(BlockerDone.get().ok());
  for (std::future<BuildResponse> &F : Accepted)
    EXPECT_TRUE(F.get().ok());

  Service.stop();
  BuildRequest Late;
  Late.Matrix = bandMatrix(10, 5.0, 9.0, 123);
  EXPECT_EQ(Service.submit(std::move(Late)).Error,
            ServiceError::ShuttingDown)
      << "post-shutdown rejection must report ShuttingDown, not overload";
}

TEST(QosService, CoalescesIdenticalInFlightRequests) {
  ServiceOptions Options;
  Options.NumWorkers = 1;
  Options.Qos.Enabled = true;
  TreeService Service(Options);

  // Pin the single worker so the identical submissions below all join
  // one in-flight flight instead of being solved one by one.
  BuildRequest Blocker;
  Blocker.Matrix = narrowBandMatrix(18, 5);
  Blocker.MaxExactBlockSize = 18;
  Blocker.NodeBudget = 400'000;
  Blocker.UseCache = false;
  std::future<BuildResponse> BlockerDone =
      Service.submitAsync(std::move(Blocker));

  DistanceMatrix M = bandMatrix(12, 5.0, 9.0, 31);
  std::vector<std::future<BuildResponse>> Futures;
  for (int I = 0; I < 6; ++I) {
    BuildRequest R;
    R.Matrix = M;
    // Scheduling-only fields are normalized out of the coalescing
    // identity: different priorities still share one solve.
    R.Priority = I % 2 ? RequestPriority::High : RequestPriority::Normal;
    Futures.push_back(Service.submitAsync(std::move(R)));
  }

  EXPECT_TRUE(BlockerDone.get().ok());
  std::string Newick;
  int FannedOut = 0;
  for (std::future<BuildResponse> &F : Futures) {
    BuildResponse R = F.get();
    ASSERT_TRUE(R.ok()) << R.Message;
    if (Newick.empty())
      Newick = R.Newick;
    EXPECT_EQ(R.Newick, Newick) << "fan-out must replay one answer";
    FannedOut += R.Coalesced ? 1 : 0;
  }
  EXPECT_EQ(FannedOut, 5) << "one leader, five coalesced followers";
  EXPECT_EQ(Service.stats().Coalesced, 5u);
  // Followers never occupied a queue slot or ran a solve: the solver
  // answered the leader once (the cache saw at most that one insert).
  EXPECT_EQ(Service.stats().Completed, 2u) << "blocker + leader only";
}

// Satellite: coalesced fan-out under concurrent submit and shutdown.
// Hammered by TSan via the `tsan` label: every future must resolve —
// solved, fanned out, or failed with a shutdown/overload code — with no
// lost promises and no data races between attach, take and stop.
TEST(QosService, CoalescedFanOutSurvivesConcurrentShutdownStorm) {
  for (int Round = 0; Round < 4; ++Round) {
    ServiceOptions Options;
    Options.NumWorkers = 2;
    Options.QueueCapacity = 16;
    Options.BlockOnFullQueue = false;
    Options.Qos.Enabled = true;
    TreeService Service(Options);

    constexpr int NumThreads = 4;
    constexpr int PerThread = 24;
    std::vector<std::vector<std::future<BuildResponse>>> Futures(NumThreads);
    std::vector<std::thread> Submitters;
    Submitters.reserve(NumThreads);
    for (int T = 0; T < NumThreads; ++T)
      Submitters.emplace_back([T, Round, &Service, &Futures] {
        for (int I = 0; I < PerThread; ++I) {
          BuildRequest R;
          // A handful of distinct matrices shared across threads: most
          // submissions coalesce onto an in-flight twin.
          R.Matrix = bandMatrix(
              10, 5.0, 9.0,
              static_cast<std::uint64_t>(Round * 3 + I % 3 + 1));
          R.Priority = static_cast<RequestPriority>(I % 3);
          R.Tenant = T % 2 ? "storm-a" : "storm-b";
          Futures[T].push_back(Service.submitAsync(std::move(R)));
        }
      });

    // Stop concurrently with the submit storm on odd rounds; after it
    // on even rounds (both interleavings must hold the promise).
    if (Round % 2 == 1)
      Service.stop();
    for (std::thread &S : Submitters)
      S.join();
    if (Round % 2 == 0)
      Service.stop();

    int Answered = 0;
    for (std::vector<std::future<BuildResponse>> &PerThreadFutures : Futures)
      for (std::future<BuildResponse> &F : PerThreadFutures) {
        BuildResponse R = F.get(); // must never hang or throw
        if (!R.ok()) {
          EXPECT_TRUE(R.Error == ServiceError::ShuttingDown ||
                      R.Error == ServiceError::QueueFull)
              << "unexpected storm error: " << R.Message;
        }
        ++Answered;
      }
    EXPECT_EQ(Answered, NumThreads * PerThread);
  }
}
